package serve

import (
	"errors"
	"fmt"
	"time"

	"pimzdtree/internal/core"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/obs"
)

// Op identifies a client operation.
type Op uint8

// Client operations. The zero value is invalid so uninitialized requests
// fail validation instead of silently becoming searches.
const (
	OpSearch Op = iota + 1
	OpInsert
	OpDelete
	OpKNN
	OpBox

	// opBarrier is engine-internal: it completes only after every request
	// admitted before it has completed, giving tests and the drain path a
	// deterministic epoch cut.
	opBarrier
)

// String names the op as the metrics label and wire protocol spell it.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpKNN:
		return "knn"
	case OpBox:
		return "box"
	case opBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Sentinel errors a request can complete with. HTTP maps all three to
// 503 (the client should back off and retry); the wire protocol has a
// status code per case.
var (
	// ErrQueueFull is admission control: the intake queue is at capacity
	// and the request was shed instead of enqueued.
	ErrQueueFull = errors.New("serve: intake queue full")
	// ErrShuttingDown rejects requests submitted after shutdown began.
	ErrShuttingDown = errors.New("serve: engine shutting down")
	// ErrDrainDeadline completes requests still pending when the shutdown
	// drain deadline passes: they were accepted but not executed.
	ErrDrainDeadline = errors.New("serve: shutdown drain deadline exceeded")
)

// BadRequestError reports malformed client input (wrong dimensionality,
// empty batch, out-of-range k). HTTP maps it to 400.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return "serve: bad request: " + e.Msg }

// badReq builds a BadRequestError.
func badReq(format string, args ...any) error {
	return &BadRequestError{Msg: fmt.Sprintf(format, args...)}
}

// Request is one client operation: a batch of points (search, insert,
// delete, knn) or boxes (box count). Submit enqueues it; Done() closes
// once the engine has filled Resp. A Request must not be reused.
type Request struct {
	Op    Op
	Pts   []geom.Point
	Boxes []geom.Box
	K     int // OpKNN only

	// ID is an optional client-chosen request ID (0 = none). The wire
	// protocol and HTTP API echo it in the response together with the
	// request's stage decomposition, and slow-request capture records it,
	// so a client-observed outlier is directly greppable in
	// /snapshot/slowrequests.
	ID uint64

	Resp Response

	done chan struct{}
	enq  time.Time

	// ts holds the monotonic stage-boundary stamps (see stages.go).
	ts [numBoundaries]int64

	// firstTrace is the flight trace of the first coalesced batch that
	// served the request (Resp.Trace carries the last).
	firstTrace uint64

	// Fan-out capture context, set by the executor while the serving
	// batch's report is still live (fanSpans aliases engine scratch and
	// is only read inside finish, where the tracer copies it if kept).
	fanMax    int32
	fanPruned int32
	fanSpans  []obs.FanoutSpan
}

// NewRequest builds a request with its completion channel armed.
func NewRequest(op Op) *Request {
	return &Request{Op: op, done: make(chan struct{})}
}

// Done returns the completion channel: closed once Resp is filled.
func (r *Request) Done() <-chan struct{} { return r.done }

// complete fills the terminal state and releases the waiter.
func (r *Request) complete() { close(r.done) }

// fail completes the request with an error.
func (r *Request) fail(err error) {
	r.Resp.Err = err
	r.complete()
}

// opCount returns the number of point-operations the request admits into
// the queue (admission control is sized in ops, not requests, so one
// giant batch cannot starve a thousand small ones unaccounted).
func (r *Request) opCount() int64 {
	if r.Op == OpBox {
		return int64(len(r.Boxes))
	}
	n := int64(len(r.Pts))
	if n == 0 {
		n = 1 // barriers and degenerate requests still occupy a slot
	}
	return n
}

// Response is the terminal state of a request. Exactly the fields for the
// request's Op are populated.
type Response struct {
	Err error

	Found     []bool            // OpSearch: membership per point
	Applied   int               // OpInsert/OpDelete: points applied
	Neighbors [][]core.Neighbor // OpKNN: per query, sorted by distance
	Counts    []int64           // OpBox: stored points per box

	// ID is the client request ID the server echoed back (wire clients
	// only; 0 when the request carried none).
	ID uint64
	// Epoch is the update epoch the request observed: for reads, the
	// stable snapshot epoch the whole read phase ran against; for
	// updates, the epoch their batch published.
	Epoch uint64
	// Trace is the flight-recorder trace ID of the coalesced tree batch
	// that served this request (0 when tracing is off).
	Trace uint64
	// StageNanos is the request's stage decomposition (index-aligned
	// with StageNames): wall nanoseconds spent in each pipeline stage,
	// summing to the admitted→replied total.
	StageNanos [NumStages]int64
}

// validate rejects malformed requests before they reach the queue.
func (e *Engine) validate(r *Request) error {
	dims := e.cfg.Backend.Dims()
	switch r.Op {
	case OpSearch, OpInsert, OpDelete, OpKNN:
		if len(r.Pts) == 0 {
			return badReq("%s: empty point batch", r.Op)
		}
		if len(r.Boxes) != 0 {
			return badReq("%s: unexpected boxes", r.Op)
		}
		for i := range r.Pts {
			if r.Pts[i].Dims != dims {
				return badReq("%s: point %d has %d dims, index has %d", r.Op, i, r.Pts[i].Dims, dims)
			}
		}
		if r.Op == OpKNN && (r.K < 1 || r.K > e.cfg.MaxK) {
			return badReq("knn: k=%d outside [1, %d]", r.K, e.cfg.MaxK)
		}
	case OpBox:
		if len(r.Boxes) == 0 {
			return badReq("box: empty box batch")
		}
		if len(r.Pts) != 0 {
			return badReq("box: unexpected points")
		}
		for i := range r.Boxes {
			if r.Boxes[i].Lo.Dims != dims || r.Boxes[i].Hi.Dims != dims {
				return badReq("box %d: dims mismatch (index has %d)", i, dims)
			}
		}
	case opBarrier:
		// engine-internal, always valid
	default:
		return badReq("unknown op %d", uint8(r.Op))
	}
	return nil
}
