package costmodel

// Energy model. The paper reports memory traffic as "a primary contributor
// to power consumption in index-based applications" (§7.1, citing the
// UPMEM characterization studies [37, 48, 66]); this file turns the counted
// traffic and work into first-order energy estimates so the harness can
// report per-operation energy alongside throughput. Constants are
// order-of-magnitude figures from the cited literature.
const (
	// EnergyDRAMPerByte is the energy of moving one byte over a DDR4
	// channel including DRAM array access (~12-20 pJ/bit).
	EnergyDRAMPerByte = 150e-12 // J
	// EnergyChannelPerByte is the CPU<->PIM transfer energy per byte
	// (same physical channel as DRAM).
	EnergyChannelPerByte = 150e-12 // J
	// EnergyPIMLocalPerByte is a PIM core's bank-local access energy per
	// byte — the on-chip proximity that motivates PIM (~5-10x cheaper
	// than crossing the channel).
	EnergyPIMLocalPerByte = 20e-12 // J
	// EnergyCPUOp is the energy of one abstract host work unit on a
	// server core (~50-100 pJ/op including pipeline overheads).
	EnergyCPUOp = 80e-12 // J
	// EnergyPIMOp is the energy of one PIM-core cycle (small in-order
	// core, ~10-20 pJ/op).
	EnergyPIMOp = 15e-12 // J
)

// BaselineEnergy estimates the energy of a CPU baseline phase from its
// abstract work and DRAM traffic.
func BaselineEnergy(work, dramBytes int64) float64 {
	return float64(work)*EnergyCPUOp + float64(dramBytes)*EnergyDRAMPerByte
}

// PIMEnergy estimates the energy of a PIM execution from host work, host
// DRAM traffic, channel traffic, total PIM cycles, and PIM-local bytes
// touched (approximated by cycles when not tracked separately).
func PIMEnergy(cpuWork, cpuDRAMBytes, channelBytes, pimCycles, pimLocalBytes int64) float64 {
	return float64(cpuWork)*EnergyCPUOp +
		float64(cpuDRAMBytes)*EnergyDRAMPerByte +
		float64(channelBytes)*EnergyChannelPerByte +
		float64(pimCycles)*EnergyPIMOp +
		float64(pimLocalBytes)*EnergyPIMLocalPerByte
}
