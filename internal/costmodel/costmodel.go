// Package costmodel converts the work and traffic counters collected by
// the PIM simulator (internal/pim) and the LLC simulator (internal/memsim)
// into modeled execution times.
//
// No PIM hardware is available to this reproduction, so all reported
// throughputs are produced by a deterministic analytic model of the two
// machines the paper uses:
//
//   - the UPMEM server: 2x Intel Xeon Silver 4216 (32 threads, 2.1 GHz,
//     22 MB LLC), 8 memory channels populated with UPMEM DIMMs (2048 PIM
//     modules at 350 MHz, ~628 MB/s local bandwidth each) and 4 channels of
//     DDR4-2400; and
//   - the baseline machine: 2x Intel Xeon E5-2630 v4 (20 cores at 2.2 GHz,
//     2x25 MB LLC), 8 channels of DDR4.
//
// The model is a per-phase roofline. For a CPU phase, time is
// max(work/effective-compute-rate, DRAM-traffic/bandwidth). For a PIM
// round, time is mux-switch latency plus the slowest module's cycles plus
// channel transfer time. These are precisely the first-order effects the
// paper's evaluation attributes its results to: baselines become
// memory-bandwidth bound while PIM execution is round- and compute-bound.
package costmodel

import "fmt"

// Machine describes the modeled host (and, if PIM-equipped, the PIM side).
type Machine struct {
	Name string

	// CPU side.
	CPUHz        float64 // core clock
	CPUCores     int     // hardware threads usable by the host program
	CPUIPC       float64 // sustained abstract work units per cycle per core
	LLCBytes     int64   // last-level cache capacity
	LLCWays      int     // associativity
	DRAMBW       float64 // CPU<->DRAM bandwidth, bytes/s
	ParallelEff  float64 // fraction of linear scaling the host achieves
	PointerChase float64 // extra seconds per dependent DRAM miss (latency-bound walks)

	// PIM side (zero for machines without PIM).
	PIMModules   int
	PIMHz        float64 // PIM core clock
	PIMIPC       float64 // abstract work units per cycle per PIM core
	ChannelBW    float64 // aggregate CPU<->PIM transfer bandwidth, bytes/s
	MuxSwitch    float64 // seconds per BSP round for switching MRAM ownership
	PerModuleHdr float64 // per-module per-round launch overhead (SDK path)
}

// UPMEMServer returns the model of the paper's PIM-equipped machine.
func UPMEMServer() Machine {
	return Machine{
		Name:         "upmem-server",
		CPUHz:        2.1e9,
		CPUCores:     32,
		CPUIPC:       1.0,
		LLCBytes:     22 << 20,
		LLCWays:      11,
		DRAMBW:       55e9, // 4 channels DDR4-2400, effective
		ParallelEff:  0.7,
		PointerChase: 80e-9,

		PIMModules:   2048,
		PIMHz:        350e6,
		PIMIPC:       0.8,
		ChannelBW:    16e9,   // effective CPU<->PIM copy bandwidth
		MuxSwitch:    60e-6,  // MRAM mux switch per round
		PerModuleHdr: 0.3e-6, // SDK launch overhead per active module per round
	}
}

// BaselineServer returns the model of the machine the shared-memory
// baselines run on (2x E5-2630 v4).
func BaselineServer() Machine {
	return Machine{
		Name:         "baseline-server",
		CPUHz:        2.2e9,
		CPUCores:     40, // 20 cores x 2 threads
		CPUIPC:       1.0,
		LLCBytes:     50 << 20,
		LLCWays:      20,
		DRAMBW:       110e9, // 8 channels DDR4-2400, effective
		ParallelEff:  0.7,
		PointerChase: 80e-9,
	}
}

// CPUPhase models one parallel host phase: work abstract units executed
// across the cores, traffic bytes crossing the DRAM bus, and chase counting
// serially-dependent misses (critical-path pointer chasing, priced at
// latency rather than bandwidth).
func (m Machine) CPUPhase(work int64, trafficBytes int64, chase int64) float64 {
	rate := m.CPUHz * float64(m.CPUCores) * m.CPUIPC * m.ParallelEff
	compute := float64(work) / rate
	memory := float64(trafficBytes) / m.DRAMBW
	t := compute
	if memory > t {
		t = memory
	}
	return t + float64(chase)*m.PointerChase/float64(m.CPUCores)
}

// PIMRound models one BSP round: the mux switch, per-module launch
// overhead for the active modules, the slowest module's compute, and the
// channel transfer of the round's bytes.
func (m Machine) PIMRound(maxModuleCycles int64, bytesTransferred int64, activeModules int, directAPI bool) float64 {
	if m.PIMModules == 0 {
		panic("costmodel: PIMRound on a machine without PIM")
	}
	t := m.MuxSwitch
	if !directAPI {
		t += float64(activeModules) * m.PerModuleHdr
	}
	t += float64(maxModuleCycles) / (m.PIMHz * m.PIMIPC)
	t += float64(bytesTransferred) / m.ChannelBW
	return t
}

// Throughput converts elements processed and modeled seconds into the
// paper's throughput metric (returned elements per second).
func Throughput(elements int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(elements) / seconds
}

// PerElementTraffic converts total bus bytes and returned elements into the
// paper's per-element memory-traffic metric.
func PerElementTraffic(bytes int64, elements int) float64 {
	if elements == 0 {
		return 0
	}
	return float64(bytes) / float64(elements)
}

// String summarizes the machine.
func (m Machine) String() string {
	if m.PIMModules > 0 {
		return fmt.Sprintf("%s: %d threads @%.1fGHz, LLC %dMB, %d PIM modules @%.0fMHz",
			m.Name, m.CPUCores, m.CPUHz/1e9, m.LLCBytes>>20, m.PIMModules, m.PIMHz/1e6)
	}
	return fmt.Sprintf("%s: %d threads @%.1fGHz, LLC %dMB", m.Name, m.CPUCores, m.CPUHz/1e9, m.LLCBytes>>20)
}

// Abstract work-unit prices for common operations, used by the trees when
// annotating their compute. One unit is roughly one simple ALU op. On PIM
// cores, multiplication and division are far slower (the paper cites up to
// 32 cycles on UPMEM), which is what makes the l2 metric expensive on the
// PIM side and motivates the l1-anchored filtering of §6.
const (
	WorkCompare   = 1  // integer compare / branch
	WorkWord      = 1  // load/store of a word (compute component)
	WorkAddSub    = 1  // addition, subtraction, bitwise op
	WorkMulPIM    = 32 // multiplication on a PIM core (UPMEM, no 32x32 mul unit)
	WorkMulCPU    = 1  // multiplication on the host (fully pipelined)
	WorkHash      = 6  // hashing a key to a module
	WorkHeapOp    = 8  // priority-queue push/pop (log k with small k)
	WorkPointDist = 4  // per-dimension distance accumulation, excluding muls
)

// FutureCXLPIM returns a forward-looking machine projection: a CXL-attached
// PIM pool with four times the channel bandwidth, faster PIM cores, and a
// larger host cache — the directions §7.3 of the paper points at ("future
// systems with larger caches would be advantageous") and the Q2 question
// (does the design stay effective on future PIM systems?) asks about.
func FutureCXLPIM() Machine {
	m := UPMEMServer()
	m.Name = "future-cxl-pim"
	m.LLCBytes = 96 << 20 // larger host cache
	m.PIMHz = 1.0e9       // faster in-order PIM cores
	m.ChannelBW = 64e9    // CXL-class aggregate transfer bandwidth
	m.MuxSwitch = 10e-6   // cheaper ownership switching
	m.PIMModules = 4096
	return m
}
