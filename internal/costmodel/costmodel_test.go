package costmodel

import (
	"strings"
	"testing"
)

func TestCPUPhaseRoofline(t *testing.T) {
	m := BaselineServer()
	// Pure compute: no traffic.
	tc := m.CPUPhase(1e9, 0, 0)
	// Pure memory: enough traffic to dominate.
	tm := m.CPUPhase(0, 1e12, 0)
	if tc <= 0 || tm <= 0 {
		t.Fatal("phase times must be positive")
	}
	// Roofline: combined phase is the max, not the sum.
	both := m.CPUPhase(1e9, 1e12, 0)
	if both != tm && both != tc {
		t.Fatalf("roofline violated: both=%g tc=%g tm=%g", both, tc, tm)
	}
	if both < tc || both < tm {
		t.Fatal("max must dominate components")
	}
}

func TestCPUPhaseChaseAddsLatency(t *testing.T) {
	m := BaselineServer()
	base := m.CPUPhase(1000, 0, 0)
	chased := m.CPUPhase(1000, 0, 1000)
	if chased <= base {
		t.Fatal("pointer chasing should add time")
	}
}

func TestPIMRoundComponents(t *testing.T) {
	m := UPMEMServer()
	// Round with nothing still pays the mux switch.
	empty := m.PIMRound(0, 0, 0, true)
	if empty != m.MuxSwitch {
		t.Fatalf("empty round = %g, want mux %g", empty, m.MuxSwitch)
	}
	// Compute scales with the max module cycles.
	slow := m.PIMRound(1e6, 0, 0, true)
	if slow <= empty {
		t.Fatal("module cycles not counted")
	}
	// SDK path adds per-module overhead.
	sdk := m.PIMRound(0, 0, 2048, false)
	direct := m.PIMRound(0, 0, 2048, true)
	if sdk <= direct {
		t.Fatal("SDK overhead missing")
	}
	// Transfers cost channel time.
	xfer := m.PIMRound(0, 1<<30, 0, true)
	if xfer <= empty {
		t.Fatal("transfer bytes not counted")
	}
}

func TestPIMRoundPanicsWithoutPIM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BaselineServer().PIMRound(0, 0, 0, true)
}

func TestThroughputAndTraffic(t *testing.T) {
	if Throughput(100, 2) != 50 {
		t.Fatal("Throughput wrong")
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero time should yield 0")
	}
	if PerElementTraffic(1000, 10) != 100 {
		t.Fatal("PerElementTraffic wrong")
	}
	if PerElementTraffic(1000, 0) != 0 {
		t.Fatal("zero elements should yield 0")
	}
}

func TestMachineConfigsSane(t *testing.T) {
	u := UPMEMServer()
	b := BaselineServer()
	if u.PIMModules != 2048 {
		t.Fatalf("UPMEM modules = %d", u.PIMModules)
	}
	if b.PIMModules != 0 {
		t.Fatal("baseline should have no PIM")
	}
	if u.LLCBytes != 22<<20 {
		t.Fatal("UPMEM LLC size wrong")
	}
	// Aggregate PIM local bandwidth should exceed host DRAM bandwidth —
	// the core architectural advantage the paper leverages.
	pimAggregateBW := float64(u.PIMModules) * 628e6
	if pimAggregateBW <= u.DRAMBW {
		t.Fatal("PIM aggregate bandwidth should exceed host DRAM bandwidth")
	}
}

func TestMachineString(t *testing.T) {
	if !strings.Contains(UPMEMServer().String(), "PIM modules") {
		t.Fatal("UPMEM string should mention PIM")
	}
	if strings.Contains(BaselineServer().String(), "PIM") {
		t.Fatal("baseline string should not mention PIM")
	}
}

func TestWorkConstants(t *testing.T) {
	if WorkMulPIM <= WorkMulCPU {
		t.Fatal("PIM multiply must be modeled slower than CPU multiply")
	}
	if WorkCompare != 1 || WorkAddSub != 1 {
		t.Fatal("unit work constants changed")
	}
}

func TestParallelEfficiencyReducesRate(t *testing.T) {
	m := BaselineServer()
	perfect := m
	perfect.ParallelEff = 1.0
	if perfect.CPUPhase(1e9, 0, 0) >= m.CPUPhase(1e9, 0, 0) {
		t.Fatal("parallel efficiency not applied")
	}
}

func TestEnergyModels(t *testing.T) {
	// Zero inputs cost nothing.
	if BaselineEnergy(0, 0) != 0 || PIMEnergy(0, 0, 0, 0, 0) != 0 {
		t.Fatal("zero energy")
	}
	// Moving a byte over the channel must cost more than touching it in
	// PIM-local memory — the architectural premise.
	if EnergyChannelPerByte <= EnergyPIMLocalPerByte {
		t.Fatal("channel energy should exceed PIM-local energy")
	}
	// A traffic-heavy baseline op should cost more than a PIM op that
	// keeps the same bytes local.
	base := BaselineEnergy(100, 64*20)
	pimE := PIMEnergy(100, 0, 64, 100, 64*20)
	if pimE >= base {
		t.Fatalf("PIM energy %g should undercut baseline %g for local work", pimE, base)
	}
	if BaselineEnergy(1000, 0) <= 0 {
		t.Fatal("work energy missing")
	}
}

func TestFutureCXLPIMStrictlyStronger(t *testing.T) {
	u, f := UPMEMServer(), FutureCXLPIM()
	if f.ChannelBW <= u.ChannelBW || f.PIMHz <= u.PIMHz || f.LLCBytes <= u.LLCBytes {
		t.Fatal("future machine should dominate the UPMEM config")
	}
	if f.MuxSwitch >= u.MuxSwitch {
		t.Fatal("future machine should switch faster")
	}
	// The same round must be modeled faster on the future machine.
	if f.PIMRound(1e6, 1<<20, 1024, true) >= u.PIMRound(1e6, 1<<20, 1024, true) {
		t.Fatal("round not faster on future machine")
	}
}
