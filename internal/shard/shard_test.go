package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pimzdtree/internal/core"
	"pimzdtree/internal/costmodel"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/metrics"
	"pimzdtree/internal/morton"
	"pimzdtree/internal/obs"
	"pimzdtree/internal/workload"
)

func testMachine(p int) costmodel.Machine {
	m := costmodel.UPMEMServer()
	m.PIMModules = p
	return m
}

func testConfig(trees int) Config {
	return Config{Trees: trees, Dims: 3, Machine: testMachine(64), Tuning: core.ThroughputOptimized}
}

func randPoints(rng *rand.Rand, n int, dims uint8, limit uint32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Point{Dims: dims}
		for d := uint8(0); d < dims; d++ {
			p.Coords[d] = rng.Uint32() % limit
		}
		pts[i] = p
	}
	return pts
}

// refBackend is the unsharded reference: the same per-tree helpers the
// S==1 pass-through uses, on a bare core.Tree.
type refBackend struct{ t *core.Tree }

func (b refBackend) search(pts []geom.Point) []bool { return searchTree(b.t, pts) }
func (b refBackend) knn(pts []geom.Point, k int) [][]core.Neighbor {
	return knnTree(b.t, pts, k)
}
func (b refBackend) boxCount(boxes []geom.Box) []int64 { return boxCountTree(b.t, boxes) }

// TestShardedDifferential: every batch op on a sharded index must return
// exactly what the same op returns on one tree over the same points —
// including kNN ties, which both sides order under core.NeighborLess.
func TestShardedDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		trees int
		limit uint32 // small limits force duplicate coords and distance ties
	}{
		{"s2_uniform", 2, 1 << 20},
		{"s4_uniform", 4, 1 << 20},
		{"s4_ties", 4, 64},
		{"s8_uniform", 8, 1 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			data := randPoints(rng, 6000, 3, tc.limit)
			warm, extra := data[:4000], data[4000:]

			ref := refBackend{t: core.New(core.Config{
				Dims: 3, Machine: testMachine(64), Tuning: core.ThroughputOptimized}, warm)}
			x := New(testConfig(tc.trees), warm)
			if x.Trees() != tc.trees {
				t.Fatalf("Trees() = %d, want %d", x.Trees(), tc.trees)
			}
			if x.Size() != ref.t.Size() {
				t.Fatalf("size %d, want %d", x.Size(), ref.t.Size())
			}

			step := func(stage string) {
				queries := append(append([]geom.Point{}, warm[:300]...),
					randPoints(rng, 300, 3, tc.limit)...)
				gotS := x.SearchBatch(queries)
				wantS := ref.search(queries)
				for i := range gotS {
					if gotS[i] != wantS[i] {
						t.Fatalf("%s: search[%d] = %v, want %v", stage, i, gotS[i], wantS[i])
					}
				}
				for _, k := range []int{1, 5, 17} {
					gotK := x.KNNBatch(queries[:120], k)
					wantK := ref.knn(queries[:120], k)
					for i := range gotK {
						if len(gotK[i]) != len(wantK[i]) {
							t.Fatalf("%s: knn k=%d q=%d: %d neighbors, want %d",
								stage, k, i, len(gotK[i]), len(wantK[i]))
						}
						for j := range gotK[i] {
							if gotK[i][j] != wantK[i][j] {
								t.Fatalf("%s: knn k=%d q=%d n=%d: %+v, want %+v",
									stage, k, i, j, gotK[i][j], wantK[i][j])
							}
						}
					}
				}
				boxes := workload.QueryBoxes(int64(len(queries)), warm, 48, 24)
				gotB := x.BoxCountBatch(boxes)
				wantB := ref.boxCount(boxes)
				for i := range gotB {
					if gotB[i] != wantB[i] {
						t.Fatalf("%s: boxcount[%d] = %d, want %d", stage, i, gotB[i], wantB[i])
					}
				}
			}

			step("warm")
			x.InsertBatch(extra)
			ref.t.Insert(extra)
			step("after-insert")
			x.DeleteBatch(warm[:700])
			ref.t.Delete(warm[:700])
			step("after-delete")

			if got, want := x.Size(), ref.t.Size(); got != want {
				t.Fatalf("final size %d, want %d", got, want)
			}
			if x.Epoch() != 2 {
				t.Fatalf("epoch = %d, want 2 (one per update batch)", x.Epoch())
			}
		})
	}
}

// TestBoxCoverProperties: the shard cover of a query box must be complete
// (every shard storing a point inside the box is covered — guaranteed by
// the aligned-block tiling) and minimal (a covered shard's key range
// really holds a key inside the query box, witnessed by intersecting the
// query with the covering block and re-encoding the corner).
func TestBoxCoverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randPoints(rng, 5000, 3, 1<<18)
	x := New(testConfig(8), data)
	boxes := workload.QueryBoxes(13, data, 64, 40)
	for bi, b := range boxes {
		cover := map[int]bool{}
		for _, s := range x.BoxCover(b) {
			cover[s] = true
			sh := x.sh[s]
			witness := false
			for _, blk := range sh.blocks {
				if !blk.Intersects(b) {
					continue
				}
				// The intersection's low corner is a concrete point in both
				// boxes; its key must belong to the shard's range.
				p := blk.Lo
				for d := 0; d < int(x.cfg.Dims); d++ {
					if b.Lo.Coords[d] > p.Coords[d] {
						p.Coords[d] = b.Lo.Coords[d]
					}
				}
				if k := morton.EncodePoint(p); k < sh.lo || k > sh.hi {
					t.Fatalf("box %d: shard %d witness key %#x outside range [%#x,%#x]",
						bi, s, k, sh.lo, sh.hi)
				}
				witness = true
				break
			}
			if !witness {
				t.Fatalf("box %d: shard %d covered but no block intersects query %v", bi, s, b)
			}
		}
		for s, sh := range x.sh {
			if cover[s] {
				continue
			}
			for _, p := range sh.tree.Points() {
				if b.Contains(p) {
					t.Fatalf("box %d: shard %d uncovered but stores %v inside query", bi, s, p)
				}
			}
		}
	}
}

// identityScenario drives one fixed batch schedule against either a bare
// tree (unsharded path) or a shard.Index, both fully instrumented, and
// returns the modeled-only metrics exposition and the retained-event
// JSONL export.
func identityScenario(t *testing.T, trees int) (exposition, jsonl []byte) {
	t.Helper()
	reg := metrics.New()
	rec := obs.New()
	rec.SetSink(metrics.NewObsSink(reg))

	data := workload.Uniform(99, 20000, 3)
	warm := data[:15000]
	queries := workload.QueryPoints(55, warm, 800)
	boxes := workload.QueryBoxes(56, warm, 64, 32)

	var (
		search func([]geom.Point) []bool
		knn    func([]geom.Point, int) [][]core.Neighbor
		boxc   func([]geom.Box) []int64
		insert func([]geom.Point)
		del    func([]geom.Point)
	)
	if trees == 0 { // bare tree, the unsharded path
		tr := core.New(core.Config{
			Dims: 3, Machine: testMachine(64), Tuning: core.ThroughputOptimized, Obs: rec}, warm)
		search = func(p []geom.Point) []bool { return searchTree(tr, p) }
		knn = func(p []geom.Point, k int) [][]core.Neighbor { return knnTree(tr, p, k) }
		boxc = func(b []geom.Box) []int64 { return boxCountTree(tr, b) }
		insert = tr.Insert
		del = tr.Delete
	} else {
		cfg := testConfig(trees)
		cfg.Obs = rec
		x := New(cfg, warm)
		search, knn, boxc = x.SearchBatch, x.KNNBatch, x.BoxCountBatch
		insert, del = x.InsertBatch, x.DeleteBatch
	}

	search(queries)
	knn(queries[:200], 8)
	boxc(boxes)
	insert(data[15000:17000])
	del(warm[:1000])
	search(queries[:400])
	knn(queries[200:300], 4)

	var eb, jb bytes.Buffer
	if err := reg.WriteText(&eb, true); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if err := rec.ExportJSONL(&jb); err != nil {
		t.Fatalf("jsonl: %v", err)
	}
	return eb.Bytes(), jb.Bytes()
}

// TestSingleTreeByteIdentity: with sharding off (Trees == 1) the modeled
// metrics exposition and trace export must be byte-identical to the
// unsharded path, at GOMAXPROCS 1, 4 and 16.
func TestSingleTreeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var refExp, refJSON []byte
	for _, procs := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			treeExp, treeJSON := identityScenario(t, 0)
			shExp, shJSON := identityScenario(t, 1)
			if !bytes.Equal(treeExp, shExp) {
				t.Errorf("S=1 exposition differs from unsharded path (%d vs %d bytes)",
					len(treeExp), len(shExp))
			}
			if !bytes.Equal(treeJSON, shJSON) {
				t.Errorf("S=1 trace export differs from unsharded path (%d vs %d bytes)",
					len(treeJSON), len(shJSON))
			}
			if refExp == nil {
				refExp, refJSON = treeExp, treeJSON
				return
			}
			if !bytes.Equal(refExp, treeExp) || !bytes.Equal(refJSON, treeJSON) {
				t.Errorf("unsharded exports diverged at GOMAXPROCS=%d", procs)
			}
		})
	}
}

// TestShardedModeledDeterminism: the sharded path's modeled exposition
// and merged trace export must be byte-identical at GOMAXPROCS 1, 4, 16
// — fork-join shard execution must never leak the schedule into the
// merged stream.
func TestShardedModeledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var refExp, refJSON []byte
	for _, procs := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			exp, jsonl := identityScenario(t, 4)
			if len(exp) == 0 || len(jsonl) == 0 {
				t.Fatal("empty export")
			}
			if refExp == nil {
				refExp, refJSON = exp, jsonl
				return
			}
			if !bytes.Equal(refExp, exp) {
				t.Errorf("S=4 exposition diverged at GOMAXPROCS=%d", procs)
			}
			if !bytes.Equal(refJSON, jsonl) {
				t.Errorf("S=4 trace export diverged at GOMAXPROCS=%d", procs)
			}
		})
	}
}

// TestRebalanceSplitsHotShard: a Zipfian-style storm on the low-Morton
// shard must trigger a repartition that shrinks the hot shard's slice of
// the key space, without perturbing query results.
func TestRebalanceSplitsHotShard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randPoints(rng, 8000, 3, 1<<16)
	cfg := testConfig(4)
	cfg.Rebalance = true
	cfg.CheckEvery = 1
	cfg.MinShardPoints = 16
	x := New(cfg, data)
	ref := refBackend{t: core.New(core.Config{
		Dims: 3, Machine: testMachine(64), Tuning: core.ThroughputOptimized}, data)}

	hotBefore := x.sh[0].tree.Size()
	hiBefore := x.sh[0].hi

	// Hot-shard storm: searches confined to the low-coordinate corner
	// (low Morton keys → shard 0), plus tiny updates to cross epoch
	// boundaries where the rebalancer runs.
	for round := 0; round < 6; round++ {
		hot := randPoints(rng, 2000, 3, 1<<13)
		x.SearchBatch(hot)
		up := randPoints(rng, 4, 3, 1<<16)
		x.InsertBatch(up)
		ref.t.Insert(up)
		if x.Rebalances() > 0 {
			break
		}
	}
	if x.Rebalances() == 0 {
		t.Fatal("hot-shard storm triggered no rebalance")
	}
	if x.MigratedPoints() == 0 {
		t.Error("rebalance migrated no points")
	}
	if x.sh[0].hi >= hiBefore && x.sh[0].tree.Size() >= hotBefore {
		t.Errorf("hot shard did not shrink: size %d->%d, hi %#x->%#x",
			hotBefore, x.sh[0].tree.Size(), hiBefore, x.sh[0].hi)
	}

	// Post-migration correctness: results still match the single tree.
	queries := append(randPoints(rng, 200, 3, 1<<16), data[:200]...)
	gotS, wantS := x.SearchBatch(queries), ref.search(queries)
	for i := range gotS {
		if gotS[i] != wantS[i] {
			t.Fatalf("post-migration search[%d] = %v, want %v", i, gotS[i], wantS[i])
		}
	}
	gotK, wantK := x.KNNBatch(queries[:64], 9), ref.knn(queries[:64], 9)
	for i := range gotK {
		for j := range gotK[i] {
			if gotK[i][j] != wantK[i][j] {
				t.Fatalf("post-migration knn q=%d n=%d: %+v, want %+v",
					i, j, gotK[i][j], wantK[i][j])
			}
		}
	}
	st := x.Stats()
	if st.Rebalances != x.Rebalances() || st.Shards != 4 || st.Points != x.Size() {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestStatsAndMetrics: snapshot surfaces stay coherent through updates.
func TestStatsAndMetrics(t *testing.T) {
	data := workload.Uniform(5, 4000, 3)
	cfg := testConfig(4)
	cfg.LoadStats = true
	x := New(cfg, data[:3000])
	st := x.Stats()
	if st.Shards != 4 || st.Points != 3000 || len(st.PerShard) != 4 {
		t.Fatalf("stats: %+v", st)
	}
	sum := 0
	for i, ps := range st.PerShard {
		sum += ps.Points
		lo, hi := x.rangeOf(i)
		if ps.Lo != lo || ps.Hi != hi {
			t.Errorf("shard %d range [%#x,%#x], want [%#x,%#x]", i, ps.Lo, ps.Hi, lo, hi)
		}
		if ps.PrefixLen != morton.CommonPrefixLen(lo, hi, 3) {
			t.Errorf("shard %d prefix len %d", i, ps.PrefixLen)
		}
	}
	if sum != 3000 {
		t.Errorf("per-shard points sum %d, want 3000", sum)
	}
	cycles, bytesV := x.ModuleLoads()
	if len(cycles) != 4*64 || len(bytesV) != 4*64 {
		t.Errorf("module loads %d/%d, want %d", len(cycles), len(bytesV), 4*64)
	}
	before := x.Metrics()
	x.InsertBatch(data[3000:])
	after := x.Metrics()
	if after.TotalSeconds() <= before.TotalSeconds() {
		t.Error("aggregate modeled seconds did not advance across an insert batch")
	}
	if got := len(x.ShardMetrics()); got != 4 {
		t.Errorf("ShardMetrics len %d", got)
	}
	if x.Imbalance() < 1 {
		t.Errorf("imbalance %f < 1", x.Imbalance())
	}
}
