// Package shard scales the PIM-zd-tree past one simulated rack: an Index
// partitions the key space across S independent core.Tree instances by
// Morton-code prefix and fronts them with a thin router, so the effective
// module count multiplies by S while every per-tree invariant (batch
// semantics, modeled cost accounting, epoch publication) is untouched.
//
// Partitioning rides the total order Morton keys already give the tree:
// S-1 cut keys chosen from the sampled key distribution carve [0, 2^kb)
// into S contiguous ranges, one tree per range. Because any key between
// two keys shares their common prefix, each range is covered by the
// prefix box of its endpoints' common prefix (morton.PrefixBox) — the
// geometric handle the router prunes with: box queries fan out only to
// shards whose prefix box intersects the query, and the cross-shard kNN
// merge skips shards whose prefix box lies outside the current k-th
// radius.
//
// The router splits every batch with a single counting pass, runs the
// shards fork-join in parallel (each shard owns its own pim.System —
// its own rack), and merges results and observability deterministically:
// per-shard obs recorders are drained into the parent recorder in shard
// order (obs.MergeWindow), so exports and modeled metrics are
// byte-identical at any GOMAXPROCS. With Trees == 1 the Index is a pure
// pass-through — no router charges, no extra spans — and its modeled
// output is byte-identical to using the core.Tree directly (tested).
//
// Rebalancing: per-shard load windows (modeled cycles + channel bytes,
// the same accounting behind the /snapshot/modules heatmap) are checked
// every few update batches; when the busiest shard exceeds MaxImbalance
// times the mean, the cut keys are recomputed load-weighted and the
// affected shards rebuilt — points migrate between neighbors at the
// epoch boundary, before the Index publishes the batch's epoch, so
// readers of the serving pipeline only ever observe fully-published
// shards.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pimzdtree/internal/core"
	"pimzdtree/internal/costmodel"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/morton"
	"pimzdtree/internal/obs"
	"pimzdtree/internal/parallel"
	"pimzdtree/internal/pim"
)

// Config sizes and tunes a sharded index.
type Config struct {
	// Trees is the shard count S (>= 1; 1 is a pass-through).
	Trees int
	// Dims is the point dimensionality (2-4).
	Dims uint8
	// Machine is the per-shard PIM machine: every shard gets its own
	// rack of Machine.PIMModules modules.
	Machine costmodel.Machine
	// Tuning selects the per-tree threshold preset.
	Tuning core.Tuning
	// LeafCap bounds points per leaf (0 = core default).
	LeafCap int
	// Obs, when non-nil, receives the merged op/phase/round stream: the
	// router wraps each batch in an op span and drains the per-shard
	// recorders into it in shard order.
	Obs *obs.Recorder
	// LoadStats enables cumulative per-module load accounting on every
	// shard's system (the per-shard /snapshot/modules heatmap).
	LoadStats bool

	// Rebalance enables load-weighted repartitioning at epoch boundaries.
	Rebalance bool
	// MaxImbalance triggers a repartition when the busiest shard's window
	// load exceeds this multiple of the mean (0 = 1.5).
	MaxImbalance float64
	// CheckEvery is the number of update batches between rebalance checks
	// (0 = 4).
	CheckEvery int
	// MinShardPoints skips repartitioning while the index holds fewer
	// than this many points per shard on average (0 = 64).
	MinShardPoints int
}

func (c *Config) fill() {
	if c.Trees <= 0 {
		c.Trees = 1
	}
	if c.MaxImbalance == 0 {
		c.MaxImbalance = 1.5
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 4
	}
	if c.MinShardPoints == 0 {
		c.MinShardPoints = 64
	}
}

// shardT is one shard: a tree over a contiguous, inclusive key range.
type shardT struct {
	tree   *core.Tree
	rec    *obs.Recorder // shard-local recorder (nil when Obs is nil or S == 1)
	lo     uint64        // first key of the range
	hi     uint64        // last key of the range (inclusive)
	box    geom.Box      // single prefix box covering [lo, hi] (display/stats)
	blocks []geom.Box    // tight aligned-block tiling of [lo, hi] (pruning)
	bt     blockTree     // hierarchy over blocks: cheap exclusion proofs
	base   pim.Metrics   // metrics snapshot at the current load-window start
}

// withinDist reports whether any point of the shard's key range can lie
// within squared distance bound of q (ties included) — the kNN fan-out
// prune. It descends the block hierarchy, which is exact at the leaves:
// the single common-prefix box can degrade to the whole space when the
// range straddles a high split bit, admitting every query, while a full
// scan of the flat tiling pays up to 2*KeyBits tests to exclude a far
// shard. checked returns the number of box-distance evaluations, for
// host-cost accounting.
func (sh *shardT) withinDist(q geom.Point, bound uint64) (hit bool, checked int) {
	return sh.bt.withinDist(q, bound)
}

// intersects reports whether the query box can contain any key of the
// shard's range, again via the tight block tiling.
func (sh *shardT) intersects(b geom.Box) bool {
	return sh.bt.intersects(b)
}

// Index is a Morton-prefix-sharded PIM-zd-tree. Batch methods mirror the
// serving engine's Backend contract: at most one batch runs at a time
// (the Index serializes internally), Epoch is readable from any
// goroutine and advances exactly once per applied update batch, and the
// read-only snapshot methods (Stats, ModuleLoads, Imbalance, Metrics)
// are safe to call concurrently with batches.
type Index struct {
	cfg     Config
	keyBits uint

	mu   sync.RWMutex
	sh   []*shardT
	cuts []uint64 // len S-1, strictly increasing; cuts[i] = first key of shard i+1

	// router accounts the host-side cost of batch splitting and result
	// merging (nil when S == 1: the pass-through routes nothing).
	router *pim.System
	// retired accumulates the final metrics of systems replaced during
	// repartitions, keeping Metrics() monotonic across migrations.
	retired pim.Metrics

	epoch             atomic.Uint64
	updatesSinceCheck int
	rebalances        int64
	migratedPoints    int64

	// routing scratch, reused across (externally serialized) batches
	ids        []int32
	counts     []int
	offs       []int
	scatterPts []geom.Point
	scatterIdx []int32

	// fan captures per-batch cross-shard fan-out spans (see fanout.go).
	fan fanState
}

// New builds a sharded index over the warmup points. Cut keys come from
// the sampled Morton-key distribution of the input (size quantiles), so
// shards start point-balanced; shard trees build in parallel, each on its
// own simulated rack.
func New(cfg Config, points []geom.Point) *Index {
	cfg.fill()
	x := &Index{cfg: cfg, keyBits: morton.KeyBits(int(cfg.Dims))}
	if cfg.Trees == 1 {
		t := core.New(x.coreConfig(cfg.Obs), points)
		x.sh = []*shardT{x.newShardT(t, nil, 0, x.maxKey())}
		return x
	}

	keys := make([]uint64, len(points))
	parallel.For(len(points), func(i int) { keys[i] = morton.EncodePoint(points[i]) })
	x.cuts = chooseCuts(keys, cfg.Trees, x.maxKey())

	// Partition the warmup set by cut (one counting pass, stable).
	parts := make([][]geom.Point, cfg.Trees)
	for i, k := range keys {
		s := findShard(x.cuts, k)
		parts[s] = append(parts[s], points[i])
	}

	x.sh = make([]*shardT, cfg.Trees)
	recs := make([]*obs.Recorder, cfg.Trees)
	for s := range x.sh {
		if cfg.Obs.Enabled() {
			recs[s] = obs.New()
		}
	}
	trees := make([]*core.Tree, cfg.Trees)
	parallel.For(cfg.Trees, func(s int) {
		trees[s] = core.New(x.coreConfig(recs[s]), parts[s])
	})
	for s := range x.sh {
		lo, hi := x.rangeOf(s)
		x.sh[s] = x.newShardT(trees[s], recs[s], lo, hi)
	}
	x.router = pim.NewSystem(cfg.Machine)
	x.router.SetRecorder(cfg.Obs)
	x.mergeWindows()
	return x
}

func (x *Index) coreConfig(rec *obs.Recorder) core.Config {
	return core.Config{
		Dims:      x.cfg.Dims,
		Machine:   x.cfg.Machine,
		Tuning:    x.cfg.Tuning,
		LeafCap:   x.cfg.LeafCap,
		Obs:       rec,
		LoadStats: x.cfg.LoadStats,
	}
}

func (x *Index) newShardT(t *core.Tree, rec *obs.Recorder, lo, hi uint64) *shardT {
	blocks := morton.RangeBoxes(lo, hi, x.cfg.Dims)
	return &shardT{tree: t, rec: rec, lo: lo, hi: hi,
		box:    rangeBox(lo, hi, x.cfg.Dims),
		blocks: blocks,
		bt:     buildBlockTree(blocks),
		base:   t.System().Metrics()}
}

// maxKey returns the largest representable key for the dimensionality.
func (x *Index) maxKey() uint64 {
	if x.keyBits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<x.keyBits - 1
}

// rangeOf returns shard s's inclusive key range under the current cuts.
func (x *Index) rangeOf(s int) (lo, hi uint64) {
	lo = uint64(0)
	if s > 0 {
		lo = x.cuts[s-1]
	}
	hi = x.maxKey()
	if s < len(x.cuts) {
		hi = x.cuts[s] - 1
	}
	return lo, hi
}

// rangeBox returns the tightest single prefix box covering the inclusive
// key range [lo, hi]: any key between lo and hi shares their common
// prefix (Morton keys are totally ordered), so the common prefix's box
// contains every point a shard can store.
func rangeBox(lo, hi uint64, dims uint8) geom.Box {
	return morton.PrefixBox(lo, morton.CommonPrefixLen(lo, hi, int(dims)), dims)
}

// findShard returns the shard owning key: the number of cuts <= key.
func findShard(cuts []uint64, key uint64) int {
	return sort.Search(len(cuts), func(i int) bool { return key < cuts[i] })
}

// chooseCuts picks S-1 strictly increasing cut keys from the sampled key
// distribution: size quantiles of the sorted sample, with even keyspace
// splits filling in wherever the sample is too concentrated (or empty)
// to yield distinct cuts.
func chooseCuts(keys []uint64, s int, maxKey uint64) []uint64 {
	sample := append([]uint64(nil), keys...)
	parallel.SortKeys(sample)
	cuts := make([]uint64, 0, s-1)
	prev := uint64(0) // first shard starts at key 0
	for j := 1; j < s; j++ {
		var c uint64
		if len(sample) > 0 {
			c = sample[j*len(sample)/s]
		}
		// Even split fallback keeps cuts strictly increasing with room
		// for the remaining shards.
		if even := prev + (maxKey-prev)/uint64(s-j+1); c <= prev || c > maxKey-(uint64(s-1-j)) {
			c = even
		}
		if c <= prev {
			c = prev + 1
		}
		cuts = append(cuts, c)
		prev = c
	}
	return cuts
}

// single returns the pass-through tree when S == 1, else nil.
func (x *Index) single() *core.Tree {
	if len(x.sh) == 1 {
		return x.sh[0].tree
	}
	return nil
}

// Dims returns the indexed dimensionality.
func (x *Index) Dims() uint8 { return x.cfg.Dims }

// Trees returns the current shard count.
func (x *Index) Trees() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.sh)
}

// Size returns the total stored point count across shards.
func (x *Index) Size() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.sizeLocked()
}

func (x *Index) sizeLocked() int {
	n := 0
	for _, sh := range x.sh {
		n += sh.tree.Size()
	}
	return n
}

// Epoch returns the published update epoch: one bump per applied update
// batch, after any epoch-boundary migration completed.
func (x *Index) Epoch() uint64 {
	if t := x.single(); t != nil {
		return t.Epoch()
	}
	return x.epoch.Load()
}

func (x *Index) String() string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return fmt.Sprintf("shard.Index{S=%d, n=%d, p=%d/shard}",
		len(x.sh), x.sizeLocked(), x.cfg.Machine.PIMModules)
}
