package shard

import (
	"pimzdtree/internal/morton"
	"pimzdtree/internal/obs"
	"pimzdtree/internal/pim"
)

// ShardStat is one shard's row in the Stats snapshot.
type ShardStat struct {
	Lo         uint64  `json:"lo"`
	Hi         uint64  `json:"hi"`
	PrefixLen  uint    `json:"prefix_len"`
	Points     int     `json:"points"`
	WindowLoad int64   `json:"window_load"`
	Modules    int     `json:"modules"`
	Epoch      uint64  `json:"epoch"`
	Seconds    float64 `json:"modeled_seconds"`
}

// Stats is a point-in-time snapshot of the sharded index, served at
// /snapshot/shards.
type Stats struct {
	Shards         int         `json:"shards"`
	Points         int         `json:"points"`
	Epoch          uint64      `json:"epoch"`
	Rebalances     int64       `json:"rebalances"`
	MigratedPoints int64       `json:"migrated_points"`
	Imbalance      float64     `json:"imbalance"`
	PerShard       []ShardStat `json:"per_shard"`
}

// Stats snapshots the per-shard layout and load profile. Safe to call
// concurrently with batches.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	st := Stats{
		Shards:         len(x.sh),
		Points:         x.sizeLocked(),
		Epoch:          x.Epoch(),
		Rebalances:     x.rebalances,
		MigratedPoints: x.migratedPoints,
		Imbalance:      1,
		PerShard:       make([]ShardStat, len(x.sh)),
	}
	loads := x.windowLoadsLocked()
	if len(x.sh) > 1 {
		st.Imbalance = imbalance(loads)
	}
	for i, sh := range x.sh {
		st.PerShard[i] = ShardStat{
			Lo:         sh.lo,
			Hi:         sh.hi,
			PrefixLen:  morton.CommonPrefixLen(sh.lo, sh.hi, int(x.cfg.Dims)),
			Points:     sh.tree.Size(),
			WindowLoad: loads[i],
			Modules:    sh.tree.P(),
			Epoch:      sh.tree.Epoch(),
			Seconds:    sh.tree.System().Metrics().TotalSeconds(),
		}
	}
	return st
}

// ModuleLoads returns the cumulative per-module load vectors of every
// shard concatenated in shard order — the per-shard heatmap: S racks of
// P modules, shard s occupying [s*P, (s+1)*P). Requires LoadStats.
func (x *Index) ModuleLoads() (cycles, bytes []int64) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	for _, sh := range x.sh {
		c, b := sh.tree.System().ModuleLoads()
		cycles = append(cycles, c...)
		bytes = append(bytes, b...)
	}
	return cycles, bytes
}

// Metrics returns the aggregate modeled cost over every shard's rack,
// the router, and any systems retired by repartitions — monotonic across
// migrations.
func (x *Index) Metrics() pim.Metrics {
	x.mu.RLock()
	defer x.mu.RUnlock()
	m := x.retired
	for _, sh := range x.sh {
		addMetrics(&m, sh.tree.System().Metrics())
	}
	if x.router != nil {
		addMetrics(&m, x.router.Metrics())
	}
	return m
}

// ShardMetrics returns each live shard rack's own modeled metrics, in
// shard order (window bases not subtracted).
func (x *Index) ShardMetrics() []pim.Metrics {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ms := make([]pim.Metrics, len(x.sh))
	for i, sh := range x.sh {
		ms[i] = sh.tree.System().Metrics()
	}
	return ms
}

// SetRecorder attaches a recorder after construction (the trace CLI
// builds first, then records a single traced op). Child recorders are
// created per shard as needed; the single-tree pass-through attaches r
// to the tree directly.
func (x *Index) SetRecorder(r *obs.Recorder) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cfg.Obs = r
	if t := x.single(); t != nil {
		t.System().SetRecorder(r)
		return
	}
	x.router.SetRecorder(r)
	for _, sh := range x.sh {
		if r.Enabled() && sh.rec == nil {
			sh.rec = obs.New()
		}
		sh.tree.System().SetRecorder(sh.rec)
	}
}

// ResetMetrics zeroes every rack's meters, the router's, and the retired
// accumulator, and restarts the load windows.
func (x *Index) ResetMetrics() {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, sh := range x.sh {
		sh.tree.System().ResetMetrics()
		sh.base = pim.Metrics{}
	}
	if x.router != nil {
		x.router.ResetMetrics()
	}
	x.retired = pim.Metrics{}
}
