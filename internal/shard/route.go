package shard

import (
	"math/bits"

	"pimzdtree/internal/core"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/morton"
	"pimzdtree/internal/parallel"
)

// Batch routing: one counting pass splits a batch into per-shard
// segments. Point i's destination is the shard whose key range contains
// its Morton key; the scatter is stable, so each shard sees its
// sub-batch in original batch order and the whole pass is deterministic
// regardless of how many workers computed the keys.

const routePointBytes = 16 // key + packed coordinates, mirrors core's pointBytes

// route partitions pts into shard segments. Returns the scattered points
// (segment s at [offs[s], offs[s+1])) and each scattered point's original
// batch position. The returned slices alias Index scratch — valid until
// the next route call.
func (x *Index) route(pts []geom.Point) (flat []geom.Point, idx []int32, offs []int) {
	s := len(x.sh)
	n := len(pts)
	if cap(x.ids) < n {
		x.ids = make([]int32, n)
		x.scatterPts = make([]geom.Point, n)
		x.scatterIdx = make([]int32, n)
	}
	if cap(x.counts) < s+1 {
		x.counts = make([]int, s+1)
		x.offs = make([]int, s+1)
	}
	ids := x.ids[:n]
	parallel.For(n, func(i int) {
		ids[i] = int32(findShard(x.cuts, morton.EncodePoint(pts[i])))
	})
	counts := x.counts[:s]
	for i := range counts {
		counts[i] = 0
	}
	for _, id := range ids {
		counts[id]++
	}
	offs = x.offs[:s+1]
	pos := 0
	for i, c := range counts {
		offs[i] = pos
		pos += c
	}
	offs[s] = pos
	flat = x.scatterPts[:n]
	idx = x.scatterIdx[:n]
	next := counts // reuse as running cursors
	copy(next, offs[:s])
	for i, id := range ids {
		at := next[id]
		next[id]++
		flat[at] = pts[i]
		idx[at] = int32(i)
	}
	return flat, idx, offs
}

// chargeRoute prices the routing pass on the host: one z-encode plus a
// log2(S) cut search per point, and one streaming scatter pass over the
// batch (read + write).
func (x *Index) chargeRoute(n int) {
	if x.router == nil || n == 0 {
		return
	}
	work := int64(n) * (morton.CostFast(x.cfg.Dims) + int64(bits.Len(uint(len(x.sh)-1))))
	x.router.CPUPhase(work, int64(n)*2*routePointBytes, 0)
}

// forEach runs fn for every non-empty segment, fork-join across shards.
func (x *Index) forEach(flat []geom.Point, offs []int, fn func(s int, seg []geom.Point)) {
	parallel.For(len(x.sh), func(s int) {
		if seg := flat[offs[s]:offs[s+1]]; len(seg) > 0 {
			fn(s, seg)
		}
	})
}

// mergeWindows drains every shard recorder into the parent recorder in
// shard order — the deterministic merge that keeps exports byte-identical
// at any GOMAXPROCS.
func (x *Index) mergeWindows() {
	if !x.cfg.Obs.Enabled() {
		return
	}
	for _, sh := range x.sh {
		x.cfg.Obs.MergeWindow(sh.rec.TakeWindow())
	}
}

// searchTree answers exact point membership against one tree: batch
// search to the terminal node, then a host-side check that the terminal
// leaf actually stores the queried point (mirrors serve.TreeBackend).
func searchTree(t *core.Tree, pts []geom.Point) []bool {
	found := make([]bool, len(pts))
	if t.Size() == 0 {
		return found
	}
	res := t.Search(pts)
	for i, r := range res {
		term := r.Terminal
		if term == nil || !term.IsLeaf() {
			continue
		}
		key := morton.EncodePoint(pts[i])
		for j, k := range term.Keys {
			if k == key && term.Pts[j].Equal(pts[i]) {
				found[i] = true
				break
			}
		}
	}
	return found
}

// SearchBatch answers point membership for the batch across all shards.
func (x *Index) SearchBatch(pts []geom.Point) []bool {
	if t := x.single(); t != nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		return searchTree(t, pts)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]bool, len(pts))
	if len(pts) == 0 {
		return out
	}
	rec := x.cfg.Obs
	rec.BeginOp("search")
	x.fanBegin("search", len(pts))
	flat, idx, offs := x.route(pts)
	x.chargeRoute(len(pts))
	results := make([][]bool, len(x.sh))
	x.forEach(flat, offs, func(s int, seg []geom.Point) {
		x.fanShard(s, len(seg), func() {
			results[s] = searchTree(x.sh[s].tree, seg)
		})
	})
	x.mergeWindows()
	rec.EndOp()
	for s, r := range results {
		for j, v := range r {
			qi := idx[offs[s]+j]
			out[qi] = v
			x.fanQuery(int(qi))
		}
	}
	x.fanFinish()
	return out
}

// InsertBatch routes the batch to its shards, applies the per-shard
// inserts in parallel, runs the epoch-boundary rebalance check, and then
// publishes the new epoch.
func (x *Index) InsertBatch(pts []geom.Point) {
	if t := x.single(); t != nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		t.Insert(pts)
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(pts) > 0 {
		rec := x.cfg.Obs
		rec.BeginOp("insert")
		x.fanBegin("insert", len(pts))
		flat, _, offs := x.route(pts)
		x.chargeRoute(len(pts))
		x.forEach(flat, offs, func(s int, seg []geom.Point) {
			x.fanShard(s, len(seg), func() {
				x.sh[s].tree.Insert(seg)
			})
		})
		x.mergeWindows()
		rec.EndOp()
		x.fanUpdateDone()
	}
	x.maybeRebalance()
	x.epoch.Add(1)
}

// DeleteBatch routes the batch to its shards and applies the per-shard
// deletes in parallel; like InsertBatch it checks for rebalancing and
// publishes a new epoch.
func (x *Index) DeleteBatch(pts []geom.Point) {
	if t := x.single(); t != nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		t.Delete(pts)
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(pts) > 0 {
		rec := x.cfg.Obs
		rec.BeginOp("delete")
		x.fanBegin("delete", len(pts))
		flat, _, offs := x.route(pts)
		x.chargeRoute(len(pts))
		x.forEach(flat, offs, func(s int, seg []geom.Point) {
			x.fanShard(s, len(seg), func() {
				x.sh[s].tree.Delete(seg)
			})
		})
		x.mergeWindows()
		rec.EndOp()
		x.fanUpdateDone()
	}
	x.maybeRebalance()
	x.epoch.Add(1)
}

// boxCountTree counts per-box stored points on one tree (empty-safe).
func boxCountTree(t *core.Tree, boxes []geom.Box) []int64 {
	if t.Size() == 0 {
		return make([]int64, len(boxes))
	}
	return t.BoxCount(boxes)
}

// BoxCountBatch counts stored points per box. Each box fans out only to
// shards whose key range can intersect it (some aligned block of the
// range overlaps the box) — the minimal shard cover, since the blocks
// tile exactly the shard's keys — and the per-shard counts sum (a point
// lives in exactly one shard).
func (x *Index) BoxCountBatch(boxes []geom.Box) []int64 {
	if t := x.single(); t != nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		return boxCountTree(t, boxes)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]int64, len(boxes))
	if len(boxes) == 0 {
		return out
	}
	rec := x.cfg.Obs
	rec.BeginOp("box-count")
	x.fanBegin("box", len(boxes))
	subBoxes := make([][]geom.Box, len(x.sh))
	subIdx := make([][]int32, len(x.sh))
	for i, b := range boxes {
		for s, sh := range x.sh {
			if sh.tree.Size() == 0 {
				continue
			}
			x.fanTest(1)
			if sh.intersects(b) {
				subBoxes[s] = append(subBoxes[s], b)
				subIdx[s] = append(subIdx[s], int32(i))
				x.fanQuery(i)
			} else {
				x.fanPrune(1)
			}
		}
	}
	if x.router != nil {
		// Cover computation: block-box tests per query box per shard.
		x.router.CPUPhase(int64(len(boxes))*int64(len(x.sh))*4, 0, 0)
	}
	counts := make([][]int64, len(x.sh))
	parallel.For(len(x.sh), func(s int) {
		if len(subBoxes[s]) > 0 {
			x.fanShard(s, len(subBoxes[s]), func() {
				counts[s] = boxCountTree(x.sh[s].tree, subBoxes[s])
			})
		}
	})
	x.mergeWindows()
	rec.EndOp()
	x.fanFinish()
	for s, cs := range counts {
		for j, c := range cs {
			out[subIdx[s][j]] += c
		}
	}
	return out
}

// ShardOf returns the index of the shard owning a point's Morton key
// under the current cuts — exposed for fan-out attribution tests.
func (x *Index) ShardOf(p geom.Point) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return findShard(x.cuts, morton.EncodePoint(p))
}

// BoxCover returns the shard indices a query box fans out to — exposed
// for the minimal-cover property test.
func (x *Index) BoxCover(b geom.Box) []int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var cover []int
	for s, sh := range x.sh {
		if sh.tree.Size() > 0 && sh.intersects(b) {
			cover = append(cover, s)
		}
	}
	return cover
}
