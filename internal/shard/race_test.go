package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pimzdtree/internal/workload"
)

// TestConcurrentSnapshotsDuringMigration: the admin surfaces (Stats,
// ModuleLoads, Imbalance, Metrics, Epoch) must be safe to read from any
// goroutine while update batches run and the rebalancer migrates points
// between shards — the invariant `make race` guards for the serving
// pipeline, where scrapes land mid-batch.
func TestConcurrentSnapshotsDuringMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := randPoints(rng, 6000, 3, 1<<16)
	cfg := testConfig(4)
	cfg.LoadStats = true
	cfg.Rebalance = true
	cfg.CheckEvery = 1
	cfg.MinShardPoints = 16
	x := New(cfg, data)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastEpoch uint64
			for !stop.Load() {
				switch r % 4 {
				case 0:
					st := x.Stats()
					if st.Shards != 4 {
						t.Errorf("snapshot shards %d", st.Shards)
						return
					}
				case 1:
					c, b := x.ModuleLoads()
					if len(c) != len(b) {
						t.Errorf("module loads %d vs %d", len(c), len(b))
						return
					}
				case 2:
					_ = x.Imbalance()
					_ = x.Metrics()
				case 3:
					e := x.Epoch()
					if e < lastEpoch {
						t.Errorf("epoch went backwards: %d < %d", e, lastEpoch)
						return
					}
					lastEpoch = e
				}
			}
		}(r)
	}

	// One writer, batches externally serialized per the Backend contract:
	// hot searches skew shard 0's load window, small updates cross epoch
	// boundaries and trigger migrations under the readers.
	queries := workload.QueryPoints(8, data, 512)
	for round := 0; round < 12; round++ {
		x.SearchBatch(randPoints(rng, 800, 3, 1<<13))
		x.InsertBatch(randPoints(rng, 64, 3, 1<<16))
		x.KNNBatch(queries[:32], 5)
		x.DeleteBatch(data[round*16 : round*16+16])
	}
	stop.Store(true)
	wg.Wait()
	if x.Epoch() != 24 {
		t.Fatalf("epoch %d, want 24", x.Epoch())
	}
}
