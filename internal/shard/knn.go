package shard

import (
	"math"

	"pimzdtree/internal/core"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/parallel"
)

// Cross-shard kNN (two phases, Alg.-3-style candidate-then-refine lifted
// to shard granularity):
//
//  1. Candidate phase: every query runs kNN on its *home* shard (the one
//     owning its Morton key) — the shard most likely to hold the true
//     neighbors. With k candidates in hand the k-th distance bounds the
//     answer.
//  2. Fan-out phase: the query is re-asked only on shards whose key
//     range lies within the current bound (minimum distance to the
//     shard's aligned-block tiling <= bound, ties included, under the
//     same squared-l2 metric kNN reports). Shards the bound excludes
//     cannot contribute a top-k neighbor because every point they store
//     lies inside one of their blocks.
//
// The final per-query merge sorts the union of per-shard top-k lists
// under core.NeighborLess — the identical (distance, then coordinates)
// total order a single tree sorts under — and truncates to k, so the
// sharded answer matches the single-tree answer exactly, ties included.
// Points live in exactly one shard, so the union is duplicate-free.

const knnMsgBytes = 24 // modeled per-candidate message, mirrors core's kNN wave

// knnTree answers kNN on one tree with the serve-layer conventions:
// k clamps to the tree size, an empty tree yields empty lists.
func knnTree(t *core.Tree, queries []geom.Point, k int) [][]core.Neighbor {
	if n := t.Size(); n == 0 {
		return make([][]core.Neighbor, len(queries))
	} else if k > n {
		k = n
	}
	return t.KNN(queries, k)
}

// knnTreeWithin is knnTree for the fan-out phase: each query ships its
// current k-th-best distance as an inclusive sphere cap, so a foreign
// tree (whose key region may be far from the query) fetches only
// potential improvements instead of deriving its own, far larger sphere.
func knnTreeWithin(t *core.Tree, queries []geom.Point, k int, caps []uint64) [][]core.Neighbor {
	if n := t.Size(); n == 0 {
		return make([][]core.Neighbor, len(queries))
	} else if k > n {
		k = n
	}
	return t.KNNWithin(queries, k, caps)
}

// KNNBatch answers exact kNN (squared l2) for the batch across all
// shards. k is clamped to the total stored point count; an empty index
// yields empty neighbor lists.
func (x *Index) KNNBatch(queries []geom.Point, k int) [][]core.Neighbor {
	if t := x.single(); t != nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		return knnTree(t, queries, k)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([][]core.Neighbor, len(queries))
	total := x.sizeLocked()
	if len(queries) == 0 || k <= 0 || total == 0 {
		return out
	}
	if k > total {
		k = total
	}
	rec := x.cfg.Obs
	rec.BeginOp("knn")
	x.fanBegin("knn", len(queries))

	// Phase 1: home-shard candidates.
	flat, idx, offs := x.route(queries)
	x.chargeRoute(len(queries))
	homeRes := make([][][]core.Neighbor, len(x.sh))
	x.forEach(flat, offs, func(s int, seg []geom.Point) {
		x.fanShard(s, len(seg), func() {
			homeRes[s] = knnTree(x.sh[s].tree, seg, k)
		})
	})
	x.mergeWindows()

	// Per-query candidate lists and pruning bounds, in batch order.
	cands := make([][]core.Neighbor, len(queries))
	home := make([]int32, len(queries))
	bound := make([]uint64, len(queries))
	for s, rs := range homeRes {
		for j, r := range rs {
			qi := idx[offs[s]+j]
			cands[qi] = append(cands[qi], r...)
			home[qi] = int32(s)
			x.fanQuery(int(qi))
			if len(r) >= k {
				bound[qi] = r[k-1].Dist
			} else {
				bound[qi] = math.MaxUint64
			}
		}
	}

	// Phase 2: fan out to the shards the bound cannot exclude, pruning
	// against each shard's tight aligned-block tiling (withinDist).
	subQ := make([][]geom.Point, len(x.sh))
	subIdx := make([][]int32, len(x.sh))
	subCap := make([][]uint64, len(x.sh))
	boxTests := 0
	for i, q := range queries {
		for s, sh := range x.sh {
			if int32(s) == home[i] || sh.tree.Size() == 0 {
				continue
			}
			hit, checked := sh.withinDist(q, bound[i])
			boxTests += checked
			if hit {
				subQ[s] = append(subQ[s], q)
				subIdx[s] = append(subIdx[s], int32(i))
				subCap[s] = append(subCap[s], bound[i])
				x.fanQuery(i)
			} else {
				x.fanPrune(1)
			}
		}
	}
	if x.router != nil {
		// Bound derivation + the block-box distance tests on the host.
		x.router.CPUPhase(int64(boxTests)*int64(x.cfg.Dims)*3, 0, 0)
	}
	x.fanTest(boxTests)
	farRes := make([][][]core.Neighbor, len(x.sh))
	parallel.For(len(x.sh), func(s int) {
		if len(subQ[s]) > 0 {
			x.fanShard(s, len(subQ[s]), func() {
				farRes[s] = knnTreeWithin(x.sh[s].tree, subQ[s], k, subCap[s])
			})
		}
	})
	x.mergeWindows()
	for s, rs := range farRes {
		for j, r := range rs {
			cands[subIdx[s][j]] = append(cands[subIdx[s][j]], r...)
		}
	}

	// Cross-shard top-k merge under the single-tree total order.
	merged := 0
	for i := range cands {
		c := cands[i]
		merged += len(c)
		sortNeighbors(c)
		if len(c) > k {
			c = c[:k]
		}
		out[i] = c
	}
	if x.router != nil {
		// Host-side merge of the per-shard candidate lists.
		x.router.CPUPhase(int64(merged)*int64(x.cfg.Dims+4), int64(merged)*knnMsgBytes, 0)
	}
	rec.EndOp()
	x.fanFinish()
	return out
}

// sortNeighbors sorts candidates in place under core.NeighborLess via a
// simple binary-insertion sort — candidate lists are at most S*k long.
func sortNeighbors(ns []core.Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && core.NeighborLess(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
