package shard

import (
	"sort"

	"pimzdtree/internal/core"
	"pimzdtree/internal/geom"
	"pimzdtree/internal/morton"
	"pimzdtree/internal/parallel"
	"pimzdtree/internal/pim"
)

// Epoch-boundary rebalancing. Every shard system already meters its own
// modeled cycles and channel bytes (the accounting behind the
// /snapshot/modules heatmap, here kept per shard); the router samples
// those meters in windows of CheckEvery update batches. When the busiest
// shard's window load passes MaxImbalance times the mean, the cut keys
// are recomputed load-weighted — each stored point weighted by its
// shard's per-point window load, new cuts at equal cumulative-load
// quantiles — and only the shards whose ranges moved are rebuilt. The
// whole repartition runs inside the update batch, before the Index
// publishes the batch's epoch, so serving-pipeline readers gated on
// Epoch() never observe a half-migrated index.

// windowLoad is one shard's modeled load since its window base: total
// module cycles plus channel bytes, the two terms a hot Morton range
// inflates.
func windowLoad(sh *shardT) int64 {
	d := sh.tree.System().Metrics().Sub(sh.base)
	return d.PIMCycleTotal + d.ChannelBytes()
}

func (x *Index) windowLoadsLocked() []int64 {
	loads := make([]int64, len(x.sh))
	for i, sh := range x.sh {
		loads[i] = windowLoad(sh)
	}
	return loads
}

// imbalance is busiest-shard load over mean load (1 when idle).
func imbalance(loads []int64) float64 {
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(loads)) / float64(sum)
}

// Imbalance returns the busiest/mean load ratio of the current
// (in-progress) load window.
func (x *Index) Imbalance() float64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if len(x.sh) == 1 {
		return 1
	}
	return imbalance(x.windowLoadsLocked())
}

// Rebalances returns how many repartitions the index has performed.
func (x *Index) Rebalances() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.rebalances
}

// MigratedPoints returns how many points have changed shards across all
// repartitions.
func (x *Index) MigratedPoints() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.migratedPoints
}

// maybeRebalance runs the end-of-window check. Caller holds mu; runs
// inside the update batch, before the epoch is published.
func (x *Index) maybeRebalance() {
	if len(x.sh) == 1 || !x.cfg.Rebalance {
		return
	}
	x.updatesSinceCheck++
	if x.updatesSinceCheck < x.cfg.CheckEvery {
		return
	}
	x.updatesSinceCheck = 0
	loads := x.windowLoadsLocked()
	// The next window starts here whether or not we repartition.
	defer func() {
		for _, sh := range x.sh {
			sh.base = sh.tree.System().Metrics()
		}
	}()
	if imbalance(loads) <= x.cfg.MaxImbalance {
		return
	}
	if x.sizeLocked() < x.cfg.MinShardPoints*len(x.sh) {
		return
	}
	x.repartition(loads)
}

// repartition recomputes load-weighted cuts and rebuilds the shards whose
// key ranges moved. Caller holds mu.
func (x *Index) repartition(loads []int64) {
	rec := x.cfg.Obs
	rec.BeginOp("rebalance")
	s := len(x.sh)

	// Gather the stored points; per-shard Points() is key-ordered and the
	// shards are range-ordered, so the concatenation is globally sorted.
	oldOffs := make([]int, s+1)
	total := 0
	for i, sh := range x.sh {
		oldOffs[i] = total
		total += sh.tree.Size()
	}
	oldOffs[s] = total
	all := make([]geom.Point, 0, total)
	for _, sh := range x.sh {
		all = append(all, sh.tree.Points()...)
	}
	keys := make([]uint64, total)
	parallel.For(total, func(i int) { keys[i] = morton.EncodePoint(all[i]) })

	// Cumulative load-weighted mass: every point carries its shard's
	// per-point window load (idle shards still weigh a minimum so empty
	// ranges cannot absorb the whole keyspace).
	weight := make([]float64, total)
	var mass float64
	for i := range x.sh {
		n := oldOffs[i+1] - oldOffs[i]
		if n == 0 {
			continue
		}
		w := float64(loads[i]) / float64(n)
		if w < 1 {
			w = 1
		}
		for j := oldOffs[i]; j < oldOffs[i+1]; j++ {
			mass += w
			weight[j] = mass
		}
	}

	// New cuts at equal cumulative-load quantiles, kept strictly
	// increasing with keyspace room for the remaining shards.
	newCuts := make([]uint64, 0, s-1)
	prev := uint64(0)
	maxKey := x.maxKey()
	for j := 1; j < s; j++ {
		target := mass * float64(j) / float64(s)
		p := sort.Search(total, func(i int) bool { return weight[i] >= target })
		var c uint64
		if p < total {
			c = keys[p]
		}
		if c <= prev || c > maxKey-uint64(s-1-j) {
			c = prev + (maxKey-prev)/uint64(s-j+1)
		}
		if c <= prev {
			c = prev + 1
		}
		newCuts = append(newCuts, c)
		prev = c
	}

	// Partition positions under the new cuts.
	newOffs := make([]int, s+1)
	for j, c := range newCuts {
		newOffs[j+1] = sort.Search(total, func(i int) bool { return keys[i] >= c })
	}
	newOffs[s] = total

	// Migrated points: everything outside the old/new range overlaps.
	moved := int64(total)
	for i := 0; i < s; i++ {
		lo := oldOffs[i]
		if newOffs[i] > lo {
			lo = newOffs[i]
		}
		hi := oldOffs[i+1]
		if newOffs[i+1] < hi {
			hi = newOffs[i+1]
		}
		if hi > lo {
			moved -= int64(hi - lo)
		}
	}

	// Host cost of the repartition: one key-encode + quantile scan over
	// the stored set, plus streaming the migrated points out and back in.
	if x.router != nil {
		x.router.CPUPhase(int64(total)*(morton.CostFast(x.cfg.Dims)+4),
			int64(total)*routePointBytes+moved*2*routePointBytes, 0)
	}

	// Rebuild only the shards whose range moved; their replaced systems'
	// meters are retired so Metrics() stays monotonic.
	x.cuts = newCuts
	rebuilt := make([]*core.Tree, s)
	parallel.For(s, func(i int) {
		lo, hi := x.rangeOf(i)
		if lo == x.sh[i].lo && hi == x.sh[i].hi {
			return // range unchanged => contents unchanged
		}
		rebuilt[i] = core.New(x.coreConfig(x.sh[i].rec), all[newOffs[i]:newOffs[i+1]])
	})
	for i, t := range rebuilt {
		if t == nil {
			continue
		}
		addMetrics(&x.retired, x.sh[i].tree.System().Metrics())
		lo, hi := x.rangeOf(i)
		x.sh[i] = x.newShardT(t, x.sh[i].rec, lo, hi)
	}

	x.rebalances++
	x.migratedPoints += moved
	rec.Add("shard-rebalances", 1)
	rec.Add("shard-migrated-points", moved)
	x.mergeWindows()
	rec.EndOp()
}

// addMetrics accumulates o into m field-wise (pim.Metrics has Sub but
// not Add; retirement needs the sum).
func addMetrics(m *pim.Metrics, o pim.Metrics) {
	m.Rounds += o.Rounds
	m.BytesToPIM += o.BytesToPIM
	m.BytesFromPIM += o.BytesFromPIM
	m.PIMCycleSum += o.PIMCycleSum
	m.PIMCycleTotal += o.PIMCycleTotal
	m.CPUWork += o.CPUWork
	m.CPUTraffic += o.CPUTraffic
	m.CPUChase += o.CPUChase
	m.CPUSeconds += o.CPUSeconds
	m.PIMSeconds += o.PIMSeconds
	m.CommSeconds += o.CommSeconds
}
