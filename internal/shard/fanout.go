package shard

import (
	"time"

	"pimzdtree/internal/obs"
	"pimzdtree/internal/pim"
)

// Per-batch fan-out capture: when enabled, every routed batch fills an
// obs.FanoutReport — which shards it touched, each shard's modeled
// cycles/bytes delta and fork-join wall share, per-query fan-out width,
// and how many shard probes the block hierarchy pruned. The serving
// engine (serve.FanoutSource) drains the report after each backend batch
// and folds it into slow-request records and the pimzd_shard_fanout
// histogram.
//
// Capture is off by default and free when off: the batch paths test one
// bool and skip every hook. When on, the per-shard instrumentation costs
// two metrics snapshots and two clock reads per touched shard per batch —
// scratch is reused, so steady-state batches allocate only for span-list
// growth on the first few batches.

// fanState is the capture scratch, reset per batch. All fields are
// guarded by Index.mu like the routing scratch (batches are externally
// serialized; SetFanoutCapture and TakeFanout take the lock themselves).
type fanState struct {
	on   bool
	live bool // the last batch filled rep

	rep  obs.FanoutReport
	perQ []int32

	// per-shard accumulation, indexed by shard (sized on demand so
	// rebalancing's shard-count changes are absorbed).
	queries []int32
	cycles  []int64
	bytes   []int64
	wall    []float64
	touched []bool
}

// SetFanoutCapture toggles per-batch fan-out capture. Only multi-shard
// indexes capture: the S == 1 pass-through routes nothing, so there is no
// fan-out to report.
func (x *Index) SetFanoutCapture(on bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.fan.on = on && len(x.sh) > 1
	x.fan.live = false
}

// TakeFanout returns the last batch's fan-out report and marks it
// consumed, or nil when capture is off (or no batch ran since the last
// take). The report's slices alias capture scratch: they are valid until
// the next batch.
func (x *Index) TakeFanout() *obs.FanoutReport {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.fan.live {
		return nil
	}
	x.fan.live = false
	return &x.fan.rep
}

// fanBegin resets the capture scratch for a batch of nq queries.
func (x *Index) fanBegin(op string, nq int) {
	f := &x.fan
	if !f.on {
		return
	}
	s := len(x.sh)
	if cap(f.perQ) < nq {
		f.perQ = make([]int32, nq)
	}
	f.perQ = f.perQ[:nq]
	for i := range f.perQ {
		f.perQ[i] = 0
	}
	if cap(f.queries) < s {
		f.queries = make([]int32, s)
		f.cycles = make([]int64, s)
		f.bytes = make([]int64, s)
		f.wall = make([]float64, s)
		f.touched = make([]bool, s)
	}
	f.queries = f.queries[:s]
	f.cycles = f.cycles[:s]
	f.bytes = f.bytes[:s]
	f.wall = f.wall[:s]
	f.touched = f.touched[:s]
	for i := 0; i < s; i++ {
		f.queries[i], f.cycles[i], f.bytes[i] = 0, 0, 0
		f.wall[i], f.touched[i] = 0, false
	}
	f.rep = obs.FanoutReport{Op: op}
}

// fanShard wraps one shard's share of a fork-join phase, accumulating its
// wall time and modeled-cost delta. Each shard owns its own system and
// its own accumulation slots, so concurrent fork-join members don't race.
func (x *Index) fanShard(s, nq int, fn func()) {
	f := &x.fan
	if !f.on {
		fn()
		return
	}
	var base pim.Metrics
	sys := x.sh[s].tree.System()
	if sys != nil {
		base = sys.Metrics()
	}
	start := time.Now()
	fn()
	f.wall[s] += time.Since(start).Seconds()
	if sys != nil {
		d := sys.Metrics().Sub(base)
		f.cycles[s] += d.PIMCycleSum
		f.bytes[s] += d.ChannelBytes()
	}
	f.queries[s] += int32(nq)
	f.touched[s] = true
}

// fanQuery adds one shard touch for query i.
func (x *Index) fanQuery(i int) {
	if x.fan.on {
		x.fan.perQ[i]++
	}
}

// fanPrune counts a shard probe the block hierarchy excluded; fanTest
// counts block-distance (or block-box) tests the pruning ran.
func (x *Index) fanPrune(n int) {
	if x.fan.on {
		x.fan.rep.Pruned += n
	}
}

func (x *Index) fanTest(n int) {
	if x.fan.on {
		x.fan.rep.BlockTests += n
	}
}

// fanFinish assembles the report from the per-shard accumulators (shard
// order, so the span list is deterministic) and publishes it for
// TakeFanout.
func (x *Index) fanFinish() {
	f := &x.fan
	if !f.on {
		return
	}
	f.rep.Shards = f.rep.Shards[:0]
	for s := range f.touched {
		if !f.touched[s] {
			continue
		}
		f.rep.Shards = append(f.rep.Shards, obs.FanoutSpan{
			Shard:       s,
			Queries:     int(f.queries[s]),
			Cycles:      f.cycles[s],
			Bytes:       f.bytes[s],
			WallSeconds: f.wall[s],
		})
	}
	f.rep.PerQuery = f.perQ
	f.live = true
}

// fanUpdateDone finishes capture for a routed update batch: every point
// lands on exactly its home shard, so per-query fan-out is 1.
func (x *Index) fanUpdateDone() {
	if !x.fan.on {
		return
	}
	for i := range x.fan.perQ {
		x.fan.perQ[i] = 1
	}
	x.fanFinish()
}
