package shard

import "pimzdtree/internal/geom"

// blockTree is a tiny bounding-volume hierarchy over a shard's ordered
// aligned-block tiling. The flat block list is exact but long (up to
// 2*KeyBits blocks), and proving a *far* shard excludable means showing
// every block is beyond the bound — a full scan per (query, shard) pair
// that dominated the router's modeled cost at higher shard counts. The
// hierarchy keeps the exclusion proof cheap: when the kNN bound is small
// (the common case after the home-shard pass), the root bounding box
// alone rejects most foreign shards in one distance test, and near the
// shard boundary the descent only opens subtrees the bound cannot rule
// out.
//
// Nodes are stored post-order in a flat slice — children before parents,
// root last — so building is a single append pass and descent needs no
// pointers.
type blockNode struct {
	bbox        geom.Box
	left, right int32 // children; -1 on leaves (bbox is then the block itself)
}

type blockTree struct {
	nodes []blockNode
}

// buildBlockTree builds the hierarchy over the blocks in range order.
// Splitting at the midpoint of the ordered list keeps siblings spatially
// coherent: consecutive Morton blocks tile consecutive key intervals.
func buildBlockTree(blocks []geom.Box) blockTree {
	bt := blockTree{nodes: make([]blockNode, 0, 2*len(blocks))}
	if len(blocks) > 0 {
		bt.build(blocks)
	}
	return bt
}

func (bt *blockTree) build(blocks []geom.Box) int32 {
	if len(blocks) == 1 {
		bt.nodes = append(bt.nodes, blockNode{bbox: blocks[0], left: -1, right: -1})
		return int32(len(bt.nodes) - 1)
	}
	mid := len(blocks) / 2
	l := bt.build(blocks[:mid])
	r := bt.build(blocks[mid:])
	bt.nodes = append(bt.nodes, blockNode{
		bbox:  bt.nodes[l].bbox.Union(bt.nodes[r].bbox),
		left:  l,
		right: r,
	})
	return int32(len(bt.nodes) - 1)
}

// withinDist reports whether any block lies within squared-l2 distance
// bound of q (ties included). checked counts box-distance evaluations,
// for host-cost accounting.
func (bt *blockTree) withinDist(q geom.Point, bound uint64) (hit bool, checked int) {
	if len(bt.nodes) == 0 {
		return false, 0
	}
	var stack [64]int32
	sp := 0
	stack[sp] = int32(len(bt.nodes) - 1)
	sp++
	for sp > 0 {
		sp--
		n := &bt.nodes[stack[sp]]
		checked++
		if n.bbox.DistL2SqTo(q) > bound {
			continue
		}
		if n.left < 0 {
			return true, checked
		}
		stack[sp] = n.left
		stack[sp+1] = n.right
		sp += 2
	}
	return false, checked
}

// intersects reports whether box b intersects any block.
func (bt *blockTree) intersects(b geom.Box) bool {
	if len(bt.nodes) == 0 {
		return false
	}
	var stack [64]int32
	sp := 0
	stack[sp] = int32(len(bt.nodes) - 1)
	sp++
	for sp > 0 {
		sp--
		n := &bt.nodes[stack[sp]]
		if !n.bbox.Intersects(b) {
			continue
		}
		if n.left < 0 {
			return true
		}
		stack[sp] = n.left
		stack[sp+1] = n.right
		sp += 2
	}
	return false
}
