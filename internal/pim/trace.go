package pim

import (
	"fmt"
	"io"
	"sync"
)

// TraceEntry records one executed BSP round for offline inspection.
type TraceEntry struct {
	Seq           int64
	ActiveModules int
	MaxCycles     int64
	TotalCycles   int64
	BytesToPIM    int64
	BytesFromPIM  int64
	Seconds       float64
}

// Utilization returns the fraction of aggregate PIM compute the round
// actually used (total cycles over active modules x the slowest module).
func (e TraceEntry) Utilization() float64 {
	if e.MaxCycles == 0 || e.ActiveModules == 0 {
		return 0
	}
	return float64(e.TotalCycles) / (float64(e.MaxCycles) * float64(e.ActiveModules))
}

// tracer captures round history when enabled. With a limit, entries form
// a wrapping ring: start indexes the oldest entry once the ring is full,
// so appends are O(1) instead of the O(n) shift a sliding copy would pay
// on every round past the limit.
type tracer struct {
	mu      sync.Mutex
	enabled bool
	seq     int64
	entries []TraceEntry
	start   int
	limit   int
}

// EnableTrace starts recording one TraceEntry per round, keeping at most
// limit entries (0 = unlimited). Tracing adds a small constant overhead
// per round and is off by default.
func (s *System) EnableTrace(limit int) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	s.trace.enabled = true
	s.trace.limit = limit
	s.trace.entries = nil
	s.trace.start = 0
	s.trace.seq = 0
}

// DisableTrace stops recording (recorded entries are retained).
func (s *System) DisableTrace() {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	s.trace.enabled = false
}

// Trace returns a copy of the recorded rounds in execution order.
func (s *System) Trace() []TraceEntry {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	out := make([]TraceEntry, 0, len(s.trace.entries))
	out = append(out, s.trace.entries[s.trace.start:]...)
	return append(out, s.trace.entries[:s.trace.start]...)
}

// recordTrace appends a round to the trace if enabled.
func (s *System) recordTrace(st RoundStats) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if !s.trace.enabled {
		return
	}
	s.trace.seq++
	e := TraceEntry{
		Seq:           s.trace.seq,
		ActiveModules: st.ActiveModules,
		MaxCycles:     st.MaxCycles,
		TotalCycles:   st.TotalCycles,
		BytesToPIM:    st.BytesToPIM,
		BytesFromPIM:  st.BytesFromPIM,
		Seconds:       st.Seconds,
	}
	if s.trace.limit > 0 && len(s.trace.entries) >= s.trace.limit {
		// Ring overwrite: replace the oldest entry and advance the head.
		s.trace.entries[s.trace.start] = e
		s.trace.start++
		if s.trace.start == len(s.trace.entries) {
			s.trace.start = 0
		}
		return
	}
	s.trace.entries = append(s.trace.entries, e)
}

// WriteTrace renders the recorded rounds as a table.
func (s *System) WriteTrace(w io.Writer) {
	entries := s.Trace()
	fmt.Fprintf(w, "%5s  %7s  %10s  %12s  %10s  %10s  %9s  %5s\n",
		"round", "modules", "max cyc", "total cyc", "to PIM B", "from PIM B", "time us", "util")
	for _, e := range entries {
		fmt.Fprintf(w, "%5d  %7d  %10d  %12d  %10d  %10d  %9.2f  %4.0f%%\n",
			e.Seq, e.ActiveModules, e.MaxCycles, e.TotalCycles,
			e.BytesToPIM, e.BytesFromPIM, e.Seconds*1e6, e.Utilization()*100)
	}
}
