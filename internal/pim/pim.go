// Package pim simulates the Processing-In-Memory model of Kang et al.
// (SPAA'21) that the paper analyzes PIM-zd-tree on: a host CPU plus P PIM
// modules, each pairing a weak core with a private local memory, executing
// in bulk-synchronous parallel (BSP) rounds. PIM modules cannot talk to
// each other; all traffic flows through the CPU over the memory channels.
//
// The simulator executes round handlers on real goroutines (so module
// code runs genuinely in parallel and bugs like cross-module sharing are
// caught by the race detector) while accounting the PIM-Model metrics
// exactly:
//
//   - communication amount: bytes moved CPU->PIM and PIM->CPU,
//   - communication rounds: number of BSP rounds,
//   - PIM time: the maximum per-module cycles within each round,
//   - CPU work: abstract units reported by host phases.
//
// Times are modeled through internal/costmodel; nothing here depends on
// wall-clock measurements, so results are deterministic.
package pim

import (
	"fmt"
	"sync"

	"pimzdtree/internal/costmodel"
	"pimzdtree/internal/obs"
	"pimzdtree/internal/parallel"
)

// Module is one PIM module: a weak core plus its private local memory.
// During a round, a module is touched only by the goroutine running its
// handler; between rounds, only by the host. Counters are therefore plain
// fields.
type Module struct {
	ID int

	// Per-round accounting, reset by the system at round start.
	cycles    int64
	recvBytes int64
	sendBytes int64

	// Cumulative local-memory footprint (for space-bound experiments).
	storedBytes int64
}

// Work charges n cycles of PIM-core execution to the module in the current
// round.
func (m *Module) Work(n int64) { m.cycles += n }

// Recv records n bytes transferred CPU->module in the current round.
func (m *Module) Recv(n int64) { m.recvBytes += n }

// Send records n bytes transferred module->CPU in the current round.
func (m *Module) Send(n int64) { m.sendBytes += n }

// StoreBytes adjusts the module's modeled local-memory footprint by delta
// (negative to free).
func (m *Module) StoreBytes(delta int64) { m.storedBytes += delta }

// StoredBytes returns the module's modeled local-memory footprint.
func (m *Module) StoredBytes() int64 { return m.storedBytes }

// Metrics accumulates the PIM-Model cost measures. Use Sub to compute the
// delta across an operation.
type Metrics struct {
	Rounds        int64
	BytesToPIM    int64
	BytesFromPIM  int64
	PIMCycleSum   int64 // sum over rounds of the max per-module cycles ("PIM time")
	PIMCycleTotal int64 // total cycles across all modules (for utilization)

	CPUWork    int64 // abstract host work units
	CPUTraffic int64 // host DRAM bytes
	CPUChase   int64 // serially-dependent host misses

	// Modeled seconds, decomposed as in the paper's Fig. 6.
	CPUSeconds  float64 // host compute phases
	PIMSeconds  float64 // slowest-module execution within rounds
	CommSeconds float64 // mux switches, launch overhead, channel transfers
}

// TotalSeconds returns the modeled end-to-end time.
func (m Metrics) TotalSeconds() float64 { return m.CPUSeconds + m.PIMSeconds + m.CommSeconds }

// ChannelBytes returns all bytes that crossed the CPU<->PIM channels.
func (m Metrics) ChannelBytes() int64 { return m.BytesToPIM + m.BytesFromPIM }

// BusBytes returns all memory-bus traffic: channel traffic plus host DRAM
// traffic — the quantity behind the paper's per-element traffic metric.
func (m Metrics) BusBytes() int64 { return m.ChannelBytes() + m.CPUTraffic }

// Sub returns m - o, field-wise.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		Rounds:        m.Rounds - o.Rounds,
		BytesToPIM:    m.BytesToPIM - o.BytesToPIM,
		BytesFromPIM:  m.BytesFromPIM - o.BytesFromPIM,
		PIMCycleSum:   m.PIMCycleSum - o.PIMCycleSum,
		PIMCycleTotal: m.PIMCycleTotal - o.PIMCycleTotal,
		CPUWork:       m.CPUWork - o.CPUWork,
		CPUTraffic:    m.CPUTraffic - o.CPUTraffic,
		CPUChase:      m.CPUChase - o.CPUChase,
		CPUSeconds:    m.CPUSeconds - o.CPUSeconds,
		PIMSeconds:    m.PIMSeconds - o.PIMSeconds,
		CommSeconds:   m.CommSeconds - o.CommSeconds,
	}
}

// System is the PIM machine: P modules and the accounting state.
type System struct {
	Machine   costmodel.Machine
	DirectAPI bool // use the improved Direct API (§6); false models SDK overhead

	modules []*Module
	allIDs  []int // cached [0..P) id list served by AllModules

	mu      sync.Mutex
	metrics Metrics
	trace   tracer

	// Cumulative per-module loads (nil until EnableModuleLoadStats) — the
	// whole-run Fig. 7 skew picture, served live by the admin endpoints.
	loadCycles []int64
	loadBytes  []int64

	// recorder, when non-nil, receives every round and CPU phase (and,
	// through span annotations made by callers, the op/phase hierarchy).
	// Set it before issuing rounds; nil costs one pointer test per event.
	recorder *obs.Recorder
}

// NewSystem returns a system with machine.PIMModules modules.
func NewSystem(machine costmodel.Machine) *System {
	if machine.PIMModules <= 0 {
		panic("pim: machine has no PIM modules")
	}
	s := &System{Machine: machine, DirectAPI: true}
	s.modules = make([]*Module, machine.PIMModules)
	s.allIDs = make([]int, machine.PIMModules)
	for i := range s.modules {
		s.modules[i] = &Module{ID: i}
		s.allIDs[i] = i
	}
	return s
}

// P returns the number of PIM modules.
func (s *System) P() int { return len(s.modules) }

// SetRecorder attaches (or detaches, with nil) the observability recorder.
// Attach before issuing rounds; the pointer is read without locking.
func (s *System) SetRecorder(r *obs.Recorder) { s.recorder = r }

// Recorder returns the attached recorder (nil when tracing is disabled;
// obs.Recorder methods are nil-safe, so callers may use it directly).
func (s *System) Recorder() *obs.Recorder { return s.recorder }

// Module returns module id. The caller must only touch it inside the
// module's own round handler or between rounds.
func (s *System) Module(id int) *Module { return s.modules[id] }

// RoundStats reports what one BSP round did.
type RoundStats struct {
	MaxCycles     int64
	TotalCycles   int64
	BytesToPIM    int64
	BytesFromPIM  int64
	ActiveModules int
	Seconds       float64

	// Straggler is the unique module id with the highest cycle count
	// (bytes break ties; pure-transfer rounds fall back to bytes alone),
	// or -1 when no single module dominates — broadcasts and perfectly
	// balanced rounds blame nobody.
	Straggler int
}

// Round executes one BSP round. handler is invoked in parallel for every
// module id in active (each exactly once); inside, the handler may call
// Work/Recv/Send on its module. Rounds are the unit the mux-switch
// overhead is charged to. Passing no active modules still counts a round
// (a barrier crossing), matching the paper's round accounting.
func (s *System) Round(active []int, handler func(m *Module)) RoundStats {
	for _, id := range active {
		m := s.modules[id]
		m.cycles, m.recvBytes, m.sendBytes = 0, 0, 0
	}
	parallel.For(len(active), func(i int) {
		handler(s.modules[active[i]])
	})
	var st RoundStats
	st.ActiveModules = len(active)
	st.Straggler = -1
	var stragBytes int64
	stragUnique := false
	for _, id := range active {
		m := s.modules[id]
		mBytes := m.recvBytes + m.sendBytes
		switch {
		case m.cycles > st.MaxCycles || (m.cycles == st.MaxCycles && mBytes > stragBytes):
			st.Straggler, stragBytes, stragUnique = id, mBytes, true
		case m.cycles == st.MaxCycles && mBytes == stragBytes:
			stragUnique = false
		}
		if m.cycles > st.MaxCycles {
			st.MaxCycles = m.cycles
		}
		st.TotalCycles += m.cycles
		st.BytesToPIM += m.recvBytes
		st.BytesFromPIM += m.sendBytes
	}
	if !stragUnique {
		st.Straggler = -1
	}
	bytes := st.BytesToPIM + st.BytesFromPIM
	st.Seconds = s.Machine.PIMRound(st.MaxCycles, bytes, st.ActiveModules, s.DirectAPI)
	pimSec := float64(st.MaxCycles) / (s.Machine.PIMHz * s.Machine.PIMIPC)

	s.mu.Lock()
	if s.loadCycles != nil {
		for _, id := range active {
			m := s.modules[id]
			s.loadCycles[id] += m.cycles
			s.loadBytes[id] += m.recvBytes + m.sendBytes
		}
	}
	s.metrics.Rounds++
	s.metrics.BytesToPIM += st.BytesToPIM
	s.metrics.BytesFromPIM += st.BytesFromPIM
	s.metrics.PIMCycleSum += st.MaxCycles
	s.metrics.PIMCycleTotal += st.TotalCycles
	s.metrics.PIMSeconds += pimSec
	s.metrics.CommSeconds += st.Seconds - pimSec
	s.mu.Unlock()
	s.recordTrace(st)
	if rec := s.recorder; rec.Enabled() {
		rec.RecordRound(obs.RoundInfo{
			ActiveModules: st.ActiveModules,
			MaxCycles:     st.MaxCycles,
			TotalCycles:   st.TotalCycles,
			BytesToPIM:    st.BytesToPIM,
			BytesFromPIM:  st.BytesFromPIM,
			Seconds:       st.Seconds,
			Straggler:     st.Straggler,
		}, pimSec, st.Seconds-pimSec, func() (cycles, byteLoads []int64) {
			// Modules are quiescent between rounds; the closure runs only
			// for sampled rounds, so unsampled rounds never pay the copy.
			cycles = make([]int64, len(active))
			byteLoads = make([]int64, len(active))
			for i, id := range active {
				m := s.modules[id]
				cycles[i] = m.cycles
				byteLoads[i] = m.recvBytes + m.sendBytes
			}
			return cycles, byteLoads
		})
	}
	return st
}

// AllModules returns the id list [0..P). The slice is cached and shared —
// every Broadcast and full round uses it — so callers must treat it as
// read-only.
func (s *System) AllModules() []int {
	return s.allIDs
}

// Broadcast charges a CPU->all-modules transfer of bytes each, as used when
// replicating L0 structure across modules. It is accounted as one round.
func (s *System) Broadcast(bytesPerModule int64) RoundStats {
	return s.Round(s.AllModules(), func(m *Module) {
		m.Recv(bytesPerModule)
	})
}

// CPUPhase charges a host-side parallel phase: work abstract units, DRAM
// traffic bytes, and chase serially-dependent misses.
func (s *System) CPUPhase(work, traffic, chase int64) {
	sec := s.Machine.CPUPhase(work, traffic, chase)
	s.mu.Lock()
	s.metrics.CPUWork += work
	s.metrics.CPUTraffic += traffic
	s.metrics.CPUChase += chase
	s.metrics.CPUSeconds += sec
	s.mu.Unlock()
	if rec := s.recorder; rec.Enabled() {
		rec.RecordCPUPhase(obs.CPUInfo{Work: work, Traffic: traffic, Chase: chase, Seconds: sec})
	}
}

// Metrics returns a snapshot of the accumulated metrics.
func (s *System) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// ResetMetrics zeroes the accumulated metrics (module memory footprints
// are preserved — they describe state, not activity).
func (s *System) ResetMetrics() {
	s.mu.Lock()
	s.metrics = Metrics{}
	s.mu.Unlock()
}

// EnableModuleLoadStats starts accumulating per-module cumulative cycle
// and byte loads across rounds (off by default: it costs two adds per
// active module per round). Enable before issuing rounds.
func (s *System) EnableModuleLoadStats() {
	s.mu.Lock()
	if s.loadCycles == nil {
		s.loadCycles = make([]int64, len(s.modules))
		s.loadBytes = make([]int64, len(s.modules))
	}
	s.mu.Unlock()
}

// ModuleLoads returns copies of the cumulative per-module cycle and byte
// loads, indexed by module id (nil, nil when accounting is disabled).
func (s *System) ModuleLoads() (cycles, bytes []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loadCycles == nil {
		return nil, nil
	}
	return append([]int64(nil), s.loadCycles...), append([]int64(nil), s.loadBytes...)
}

// StoredBytesTotal returns the summed local-memory footprint across
// modules, and the maximum on any single module.
func (s *System) StoredBytesTotal() (total, max int64) {
	for _, m := range s.modules {
		total += m.storedBytes
		if m.storedBytes > max {
			max = m.storedBytes
		}
	}
	return total, max
}

// ModuleOf hashes a 64-bit key to a module id. This is the randomized
// placement that defeats adversarial targeting of a single module (§3).
// The hash is splitmix64, fixed so placements are reproducible.
func (s *System) ModuleOf(key uint64) int {
	return int(Hash64(key) % uint64(s.P()))
}

// Hash64 is the splitmix64 finalizer, used for module placement.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Imbalanced reports whether a per-module load assignment is imbalanced
// per Alg. 1's criterion: the busiest module holds more than 3x the mean
// load. loads is indexed by module id (dense; zero entries are idle
// modules), p is the module count the mean is taken over.
func Imbalanced(loads []int, p int) bool {
	var total, max int
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return false
	}
	mean := float64(total) / float64(p)
	return float64(max) > 3*mean
}

// String describes the system.
func (s *System) String() string {
	return fmt.Sprintf("pim.System{P=%d, direct=%v}", s.P(), s.DirectAPI)
}
