package pim

import (
	"testing"

	"pimzdtree/internal/costmodel"
)

func traceTestSystem(p int) *System {
	machine := costmodel.UPMEMServer()
	machine.PIMModules = p
	return NewSystem(machine)
}

func TestTraceUtilizationEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		e    TraceEntry
		want float64
	}{
		{"zero max cycles", TraceEntry{ActiveModules: 4, MaxCycles: 0, TotalCycles: 0}, 0},
		{"zero modules", TraceEntry{ActiveModules: 0, MaxCycles: 10, TotalCycles: 10}, 0},
		{"both zero", TraceEntry{}, 0},
		{"perfect balance", TraceEntry{ActiveModules: 2, MaxCycles: 5, TotalCycles: 10}, 1},
		{"single module", TraceEntry{ActiveModules: 1, MaxCycles: 7, TotalCycles: 7}, 1},
	}
	for _, tc := range cases {
		if got := tc.e.Utilization(); got != tc.want {
			t.Errorf("%s: utilization = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTraceRingKeepsNewestInOrder(t *testing.T) {
	s := traceTestSystem(4)
	const limit, rounds = 5, 17
	s.EnableTrace(limit)
	for i := 0; i < rounds; i++ {
		work := int64(i)
		s.Round([]int{0}, func(m *Module) { m.Work(work) })
	}
	tr := s.Trace()
	if len(tr) != limit {
		t.Fatalf("trace has %d entries, want %d", len(tr), limit)
	}
	// The ring must retain exactly the newest `limit` rounds, in
	// execution order, across several wrap-arounds.
	for i, e := range tr {
		wantSeq := int64(rounds - limit + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("entry %d seq = %d, want %d (trace %+v)", i, e.Seq, wantSeq, tr)
		}
		if e.MaxCycles != wantSeq-1 {
			t.Fatalf("entry %d cycles = %d, want %d", i, e.MaxCycles, wantSeq-1)
		}
	}
}

func TestTraceRingExactlyFull(t *testing.T) {
	// Filling to exactly the limit must not drop or reorder anything.
	s := traceTestSystem(4)
	s.EnableTrace(3)
	for i := 0; i < 3; i++ {
		s.Round([]int{0}, func(m *Module) { m.Work(1) })
	}
	tr := s.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d entries, want 3", len(tr))
	}
	for i, e := range tr {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d seq = %d", i, e.Seq)
		}
	}
}

func TestTraceReenableResetsRing(t *testing.T) {
	s := traceTestSystem(4)
	s.EnableTrace(2)
	for i := 0; i < 5; i++ {
		s.Round([]int{0}, func(m *Module) {})
	}
	s.EnableTrace(3) // re-enable: fresh ring, fresh sequence
	s.Round([]int{0}, func(m *Module) {})
	tr := s.Trace()
	if len(tr) != 1 || tr[0].Seq != 1 {
		t.Fatalf("after re-enable trace = %+v", tr)
	}
}

func TestTraceUnlimitedKeepsAll(t *testing.T) {
	s := traceTestSystem(4)
	s.EnableTrace(0)
	for i := 0; i < 50; i++ {
		s.Round([]int{0}, func(m *Module) {})
	}
	tr := s.Trace()
	if len(tr) != 50 {
		t.Fatalf("trace has %d entries, want 50", len(tr))
	}
	for i, e := range tr {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d seq = %d", i, e.Seq)
		}
	}
}
