package pim

import (
	"strings"
	"sync/atomic"
	"testing"

	"pimzdtree/internal/costmodel"
)

func newTestSystem(p int) *System {
	m := costmodel.UPMEMServer()
	m.PIMModules = p
	return NewSystem(m)
}

func TestNewSystemPanicsWithoutModules(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSystem(costmodel.BaselineServer())
}

func TestRoundRunsAllActiveModules(t *testing.T) {
	s := newTestSystem(64)
	var ran atomic.Int64
	active := []int{3, 7, 11, 63}
	st := s.Round(active, func(m *Module) {
		ran.Add(1)
		m.Work(int64(m.ID))
	})
	if ran.Load() != int64(len(active)) {
		t.Fatalf("handlers ran %d times", ran.Load())
	}
	if st.MaxCycles != 63 {
		t.Fatalf("MaxCycles = %d, want 63", st.MaxCycles)
	}
	if st.TotalCycles != 3+7+11+63 {
		t.Fatalf("TotalCycles = %d", st.TotalCycles)
	}
	if st.ActiveModules != 4 {
		t.Fatalf("ActiveModules = %d", st.ActiveModules)
	}
}

func TestRoundAccumulatesMetrics(t *testing.T) {
	s := newTestSystem(16)
	s.Round([]int{0, 1}, func(m *Module) {
		m.Recv(100)
		m.Work(50)
		m.Send(30)
	})
	s.Round([]int{2}, func(m *Module) {
		m.Work(10)
	})
	got := s.Metrics()
	if got.Rounds != 2 {
		t.Fatalf("Rounds = %d", got.Rounds)
	}
	if got.BytesToPIM != 200 || got.BytesFromPIM != 60 {
		t.Fatalf("traffic = %d/%d", got.BytesToPIM, got.BytesFromPIM)
	}
	if got.PIMCycleSum != 60 { // max 50 + max 10
		t.Fatalf("PIMCycleSum = %d", got.PIMCycleSum)
	}
	if got.PIMCycleTotal != 110 {
		t.Fatalf("PIMCycleTotal = %d", got.PIMCycleTotal)
	}
	if got.ChannelBytes() != 260 {
		t.Fatalf("ChannelBytes = %d", got.ChannelBytes())
	}
}

func TestRoundCountersResetBetweenRounds(t *testing.T) {
	s := newTestSystem(4)
	s.Round([]int{0}, func(m *Module) { m.Work(100) })
	st := s.Round([]int{0}, func(m *Module) { m.Work(1) })
	if st.MaxCycles != 1 {
		t.Fatalf("cycles leaked across rounds: %d", st.MaxCycles)
	}
}

func TestEmptyRoundStillCountsMux(t *testing.T) {
	s := newTestSystem(4)
	st := s.Round(nil, func(m *Module) {})
	if st.Seconds <= 0 {
		t.Fatal("empty round should cost mux time")
	}
	if got := s.Metrics(); got.Rounds != 1 {
		t.Fatal("round not counted")
	}
}

func TestPIMAndCommSecondsSplit(t *testing.T) {
	s := newTestSystem(8)
	s.Round([]int{0}, func(m *Module) {
		m.Work(1_000_000)
		m.Send(1 << 20)
	})
	got := s.Metrics()
	if got.PIMSeconds <= 0 || got.CommSeconds <= 0 {
		t.Fatalf("breakdown = %+v", got)
	}
	wantPIM := 1_000_000 / (s.Machine.PIMHz * s.Machine.PIMIPC)
	if diff := got.PIMSeconds - wantPIM; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("PIMSeconds = %g, want %g", got.PIMSeconds, wantPIM)
	}
	if got.TotalSeconds() != got.CPUSeconds+got.PIMSeconds+got.CommSeconds {
		t.Fatal("TotalSeconds mismatch")
	}
}

func TestDirectAPIReducesRoundTime(t *testing.T) {
	direct := newTestSystem(2048)
	sdk := newTestSystem(2048)
	sdk.DirectAPI = false
	all := direct.AllModules()
	h := func(m *Module) { m.Work(1) }
	td := direct.Round(all, h)
	ts := sdk.Round(all, h)
	if ts.Seconds <= td.Seconds {
		t.Fatalf("SDK round %g should be slower than direct %g", ts.Seconds, td.Seconds)
	}
}

func TestCPUPhase(t *testing.T) {
	s := newTestSystem(4)
	s.CPUPhase(1000, 2000, 3)
	got := s.Metrics()
	if got.CPUWork != 1000 || got.CPUTraffic != 2000 || got.CPUChase != 3 {
		t.Fatalf("CPU metrics = %+v", got)
	}
	if got.CPUSeconds <= 0 {
		t.Fatal("CPU seconds not accumulated")
	}
	if got.BusBytes() != 2000 {
		t.Fatalf("BusBytes = %d", got.BusBytes())
	}
}

func TestMetricsSub(t *testing.T) {
	s := newTestSystem(4)
	s.CPUPhase(100, 0, 0)
	before := s.Metrics()
	s.Round([]int{1}, func(m *Module) { m.Work(7); m.Send(8) })
	delta := s.Metrics().Sub(before)
	if delta.CPUWork != 0 {
		t.Fatalf("delta.CPUWork = %d", delta.CPUWork)
	}
	if delta.Rounds != 1 || delta.PIMCycleSum != 7 || delta.BytesFromPIM != 8 {
		t.Fatalf("delta = %+v", delta)
	}
}

func TestResetMetrics(t *testing.T) {
	s := newTestSystem(4)
	s.Module(2).StoreBytes(500)
	s.CPUPhase(10, 0, 0)
	s.ResetMetrics()
	if got := s.Metrics(); got.CPUWork != 0 || got.Rounds != 0 {
		t.Fatal("metrics not reset")
	}
	if total, _ := s.StoredBytesTotal(); total != 500 {
		t.Fatal("stored bytes should survive reset")
	}
}

func TestStoredBytes(t *testing.T) {
	s := newTestSystem(4)
	s.Module(0).StoreBytes(100)
	s.Module(1).StoreBytes(300)
	s.Module(0).StoreBytes(-50)
	total, max := s.StoredBytesTotal()
	if total != 350 || max != 300 {
		t.Fatalf("total=%d max=%d", total, max)
	}
	if s.Module(0).StoredBytes() != 50 {
		t.Fatal("per-module footprint wrong")
	}
}

func TestBroadcast(t *testing.T) {
	s := newTestSystem(32)
	st := s.Broadcast(64)
	if st.BytesToPIM != 64*32 {
		t.Fatalf("broadcast bytes = %d", st.BytesToPIM)
	}
	if st.ActiveModules != 32 {
		t.Fatal("broadcast should touch all modules")
	}
}

func TestModuleOfDeterministicAndSpread(t *testing.T) {
	s := newTestSystem(256)
	if s.ModuleOf(12345) != s.ModuleOf(12345) {
		t.Fatal("ModuleOf not deterministic")
	}
	// Sequential keys should spread across many modules.
	seen := map[int]bool{}
	for k := uint64(0); k < 1024; k++ {
		seen[s.ModuleOf(k)] = true
	}
	if len(seen) < 200 {
		t.Fatalf("sequential keys landed on only %d of 256 modules", len(seen))
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip many output bits on average.
	var totalFlips int
	for bit := 0; bit < 64; bit++ {
		h1 := Hash64(0)
		h2 := Hash64(1 << bit)
		diff := h1 ^ h2
		for ; diff != 0; diff &= diff - 1 {
			totalFlips++
		}
	}
	if avg := float64(totalFlips) / 64; avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %f bits, want ~32", avg)
	}
}

func TestImbalanced(t *testing.T) {
	// 10 modules, loads {30,1,...}: mean over P=10 of total 39 is 3.9;
	// max 30 > 11.7 -> imbalanced.
	loads := []int{30, 1, 2, 3, 3, 0, 0, 0, 0, 0}
	if !Imbalanced(loads, 10) {
		t.Fatal("should be imbalanced")
	}
	// Even loads are balanced.
	even := make([]int, 10)
	for i := range even {
		even[i] = 5
	}
	if Imbalanced(even, 10) {
		t.Fatal("even loads flagged imbalanced")
	}
	if Imbalanced(nil, 10) {
		t.Fatal("empty loads flagged imbalanced")
	}
	if Imbalanced(make([]int, 10), 10) {
		t.Fatal("all-idle loads flagged imbalanced")
	}
}

func TestAllModules(t *testing.T) {
	s := newTestSystem(5)
	ids := s.AllModules()
	if len(ids) != 5 || ids[0] != 0 || ids[4] != 4 {
		t.Fatalf("AllModules = %v", ids)
	}
}

func TestString(t *testing.T) {
	s := newTestSystem(5)
	if s.String() != "pim.System{P=5, direct=true}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestModulesIsolatedAcrossHandlers(t *testing.T) {
	// Each handler only writes its own module; verify sums are per-module.
	s := newTestSystem(100)
	s.Round(s.AllModules(), func(m *Module) {
		m.Work(int64(m.ID + 1))
	})
	got := s.Metrics()
	if got.PIMCycleSum != 100 {
		t.Fatalf("max cycles = %d, want 100", got.PIMCycleSum)
	}
	if got.PIMCycleTotal != 5050 {
		t.Fatalf("total cycles = %d, want 5050", got.PIMCycleTotal)
	}
}

func TestTraceRecordsRounds(t *testing.T) {
	s := newTestSystem(8)
	s.EnableTrace(0)
	s.Round([]int{0, 1}, func(m *Module) { m.Work(10); m.Recv(4); m.Send(2) })
	s.Round([]int{2}, func(m *Module) { m.Work(5) })
	tr := s.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d entries", len(tr))
	}
	if tr[0].Seq != 1 || tr[1].Seq != 2 {
		t.Fatal("sequence numbers wrong")
	}
	if tr[0].ActiveModules != 2 || tr[0].MaxCycles != 10 || tr[0].BytesToPIM != 8 {
		t.Fatalf("entry 0 = %+v", tr[0])
	}
	s.DisableTrace()
	s.Round([]int{0}, func(m *Module) {})
	if len(s.Trace()) != 2 {
		t.Fatal("disabled trace still recording")
	}
}

func TestTraceLimit(t *testing.T) {
	s := newTestSystem(4)
	s.EnableTrace(3)
	for i := 0; i < 10; i++ {
		s.Round([]int{0}, func(m *Module) { m.Work(int64(i)) })
	}
	tr := s.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d entries, want 3", len(tr))
	}
	if tr[2].Seq != 10 {
		t.Fatalf("last entry seq = %d, want 10", tr[2].Seq)
	}
}

func TestTraceUtilization(t *testing.T) {
	e := TraceEntry{ActiveModules: 4, MaxCycles: 100, TotalCycles: 200}
	if u := e.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %f", u)
	}
	if (TraceEntry{}).Utilization() != 0 {
		t.Fatal("zero entry utilization")
	}
}

func TestWriteTrace(t *testing.T) {
	s := newTestSystem(4)
	s.EnableTrace(0)
	s.Round([]int{0}, func(m *Module) { m.Work(7) })
	var buf strings.Builder
	s.WriteTrace(&buf)
	if !strings.Contains(buf.String(), "round") || !strings.Contains(buf.String(), "7") {
		t.Fatalf("trace output missing content:\n%s", buf.String())
	}
}
