package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %f", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %f", got)
	}
	if got := Percentile(xs, 99); got != 5 {
		t.Fatalf("p99 = %f", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %f", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean")
	}
}

func TestHumanRate(t *testing.T) {
	cases := map[float64]string{
		5:     "5.00 Op/s",
		5e3:   "5.00 KOp/s",
		2.5e6: "2.50 MOp/s",
		1.2e9: "1.20 GOp/s",
	}
	for v, want := range cases {
		if got := HumanRate(v); got != want {
			t.Errorf("HumanRate(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	if HumanBytes(512) != "512.0 B" {
		t.Fatal(HumanBytes(512))
	}
	if HumanBytes(2048) != "2.00 KB" {
		t.Fatal(HumanBytes(2048))
	}
	if HumanBytes(3<<20) != "3.00 MB" {
		t.Fatal(HumanBytes(3 << 20))
	}
	if HumanBytes(5<<30) != "5.00 GB" {
		t.Fatal(HumanBytes(float64(5 << 30)))
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("op", "throughput", "traffic")
	tb.AddRow("insert", 1.5, 100)
	tb.AddRow("knn", 12345678.0, "n/a")
	s := tb.String()
	if !strings.Contains(s, "op") || !strings.Contains(s, "insert") {
		t.Fatalf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	// Scientific notation for large floats.
	if !strings.Contains(s, "e+07") {
		t.Fatalf("large float not in scientific notation:\n%s", s)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	// Constant series: no panic, uniform bars.
	c := []rune(Sparkline([]float64{5, 5, 5}))
	if c[0] != c[1] || c[1] != c[2] {
		t.Fatalf("constant series uneven: %q", string(c))
	}
}
