// Package stats provides the small statistical and formatting helpers the
// experiment harness uses: percentiles for latency reporting, geometric
// means for the paper's aggregate speedups, and fixed-width table output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// GeoMean returns the geometric mean of xs (which must all be positive).
// It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HumanRate formats an operations-per-second rate like the paper's
// MOp/s axes.
func HumanRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GOp/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MOp/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f KOp/s", v/1e3)
	default:
		return fmt.Sprintf("%.2f Op/s", v)
	}
}

// HumanBytes formats a byte quantity.
func HumanBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KB", v/(1<<10))
	default:
		return fmt.Sprintf("%.1f B", v)
	}
}

// Table accumulates rows and renders them with aligned columns, in the
// style of the paper's result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar chart (for sweeps in
// terminal output). An empty slice yields an empty string; a constant
// series renders mid-height bars.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(bars) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(bars)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}
