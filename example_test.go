package pimzdtree_test

import (
	"fmt"

	"pimzdtree"
)

// Example demonstrates the basic index lifecycle: build, query, update.
func Example() {
	idx := pimzdtree.New(pimzdtree.Options{Dims: 2},
		pimzdtree.P2(1, 1),
		pimzdtree.P2(4, 4),
		pimzdtree.P2(9, 9),
		pimzdtree.P2(2, 3),
	)

	nbrs := idx.KNN([]pimzdtree.Point{pimzdtree.P2(0, 0)}, 2)
	fmt.Println("nearest:", nbrs[0][0].Point, "then", nbrs[0][1].Point)

	counts := idx.BoxCount([]pimzdtree.Box{
		pimzdtree.NewBox(pimzdtree.P2(0, 0), pimzdtree.P2(5, 5)),
	})
	fmt.Println("in box:", counts[0])

	idx.Delete([]pimzdtree.Point{pimzdtree.P2(1, 1)})
	fmt.Println("size after delete:", idx.Size())

	// Output:
	// nearest: (1, 1) then (2, 3)
	// in box: 3
	// size after delete: 3
}

// ExampleIndex_KNNWithMetric shows kNN under a non-default metric. The
// PIM side filters with cheap l1 arithmetic (§6 of the paper) and the
// host applies the exact metric.
func ExampleIndex_KNNWithMetric() {
	idx := pimzdtree.New(pimzdtree.Options{Dims: 2},
		pimzdtree.P2(0, 5), // l1 distance 5, linf distance 5
		pimzdtree.P2(3, 3), // l1 distance 6, linf distance 3
	)
	q := []pimzdtree.Point{pimzdtree.P2(0, 0)}

	l1 := idx.KNNWithMetric(q, 1, pimzdtree.L1)
	linf := idx.KNNWithMetric(q, 1, pimzdtree.LInf)
	fmt.Println("l1 nearest:", l1[0][0].Point)
	fmt.Println("linf nearest:", linf[0][0].Point)

	// Output:
	// l1 nearest: (0, 5)
	// linf nearest: (3, 3)
}

// ExampleIndex_Metrics reads the PIM-Model cost counters after a batch.
func ExampleIndex_Metrics() {
	idx := pimzdtree.New(pimzdtree.Options{Dims: 2}, pimzdtree.P2(1, 2))
	idx.ResetMetrics()
	idx.KNN([]pimzdtree.Point{pimzdtree.P2(3, 4)}, 1)
	m := idx.Metrics()
	fmt.Println("rounds used:", m.Rounds >= 0, "modeled time positive:", m.TotalSeconds() >= 0)
	// Output:
	// rounds used: true modeled time positive: true
}
